"""Polynomial CPFs on the unit sphere (Section 5, Theorem 5.1, Figure 4).

Theorem 5.1: if ``sim`` is an LSHable angular similarity function (there is
a hash family with ``Pr[s(x) = s(y)] = sim(<x, y>)``) and
``P(t) = sum a_i t^i`` satisfies ``sum |a_i| = 1``, then hashing
``h(x) = s(phi1(x))``, ``g(y) = s(phi2(y))`` through the Valiant embedding
pair gives

    Pr[h(x) = g(y)] = sim(P(<x, y>)).

With SimHash (``sim(t) = 1 - arccos(t)/pi``) this produces the CPF zoo of
Figure 4 — including *decreasing*, *unimodal* and oscillation-damped shapes
impossible for symmetric LSH.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.combinators import TransformedFamily
from repro.core.cpf import CPF, LambdaCPF, SimHashCPF
from repro.core.family import DSHFamily, HashPair
from repro.families.simhash import SimHash
from repro.spaces.embeddings import TensorSketchEmbedding, ValiantEmbedding

__all__ = ["PolynomialSphereFamily", "polynomial_sphere_cpf"]


def polynomial_sphere_cpf(
    coefficients: list[float] | np.ndarray, angular_cpf: CPF | None = None
) -> CPF:
    """The composed CPF ``alpha -> sim(P(alpha))`` of Theorem 5.1."""
    coefficients = np.asarray(coefficients, dtype=np.float64).ravel()
    if angular_cpf is None:
        angular_cpf = SimHashCPF()
    if angular_cpf.arg_kind != "similarity":
        raise ValueError("angular_cpf must take a similarity argument")

    def compose(alpha: np.ndarray) -> np.ndarray:
        inner = np.polyval(coefficients[::-1], np.asarray(alpha, dtype=np.float64))
        return angular_cpf(np.clip(inner, -1.0, 1.0))

    return LambdaCPF(
        compose,
        "similarity",
        f"sim(P(alpha)) with P coefficients {coefficients.tolist()}",
    )


class PolynomialSphereFamily(DSHFamily):
    """Theorem 5.1 family: angular LSH applied through the Valiant maps.

    Parameters
    ----------
    coefficients:
        ``[a_0, ..., a_k]`` with ``sum |a_i| <= 1`` (the embedding pads any
        slack orthogonally, so ``< 1`` is allowed; the CPF is then
        ``sim(P(alpha))`` with ``P`` as given).
    d:
        Input dimension.
    angular_family_factory:
        Callable ``D -> DSHFamily`` building the LSHable angular similarity
        family on the embedded dimension ``D``; defaults to SimHash.  Its
        CPF (similarity argument) is composed into the family CPF.
    sketch_dim:
        If ``None`` (default) use the exact embedding of dimension
        ``O(d^k)``; otherwise use a TensorSketch approximation of this
        sketch size per degree (near-linear time, CPF holds up to the
        sketch error).
    rng:
        Randomness for the sketch (ignored for the exact embedding).
    """

    def __init__(
        self,
        coefficients: list[float] | np.ndarray,
        d: int,
        angular_family_factory: Callable[[int], DSHFamily] | None = None,
        sketch_dim: int | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        self.coefficients = np.asarray(coefficients, dtype=np.float64).ravel()
        self.d = int(d)
        if sketch_dim is None:
            self.embedding = ValiantEmbedding(self.coefficients, d)
        else:
            self.embedding = TensorSketchEmbedding(
                self.coefficients, d, sketch_dim=sketch_dim, rng=rng
            )
        if angular_family_factory is None:
            angular_family_factory = SimHash
        self.angular_family = angular_family_factory(self.embedding.output_dim)
        angular_cpf = self.angular_family.cpf
        if angular_cpf is None:
            raise ValueError(
                "the angular family must expose its CPF (an LSHable angular "
                "similarity function, Section 5)"
            )
        self._inner = TransformedFamily(
            self.angular_family,
            data_map=self.embedding.embed_data,
            query_map=self.embedding.embed_query,
            cpf=polynomial_sphere_cpf(self.coefficients, angular_cpf),
        )

    def sample(self, rng: int | np.random.Generator | None = None) -> HashPair:
        """Draw one hash pair from the embedded angular family."""
        return self._inner.sample(rng)

    @property
    def cpf(self) -> CPF:
        """The composed polynomial-of-angular CPF (set in ``__init__``)."""
        cpf = self._inner.cpf
        if cpf is None:  # pragma: no cover - set unconditionally in __init__
            raise RuntimeError(
                "TransformedFamily lost its CPF; PolynomialSphereFamily "
                "always constructs it in __init__"
            )
        return cpf
