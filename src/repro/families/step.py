"""Step-function CPFs from mixtures of unimodal CPFs (Figure 2, Sec 6.3-6.4).

A "step function" CPF is (roughly) flat at some level on ``[0, r]`` and
drops quickly beyond — the shape that makes spherical range reporting
output-sensitive (Theorem 6.5) and privacy-preserving distance estimation
leak little (Section 6.4).

Figure 2 builds one by convex-combining unimodal CPFs (Lemma 1.4(b)): the
``k``-shifted Euclidean families of Section 4.2 peak at distances growing
with ``k``, so a mixture of ``k = 0 .. K`` components with suitable weights
covers ``[0, r]`` evenly.  :func:`design_step_family` chooses the weights by
non-negative least squares against the flat target and reports the achieved
flatness ``f_max / f_min`` (which drives the Theorem 6.5 duplicate factor).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import nnls

from repro.core.combinators import MixtureFamily
from repro.core.cpf import CPF, ConstantCPF, MixtureCPF
from repro.core.family import DSHFamily
from repro.families.bit_sampling import ConstantCollisionFamily
from repro.families.euclidean_lsh import ShiftedEuclideanCPF, ShiftedGaussianProjection
from repro.utils.validation import check_positive

__all__ = ["StepFamilyDesign", "design_step_family", "step_quality"]


@dataclass(frozen=True)
class StepFamilyDesign:
    """Result of :func:`design_step_family`.

    Attributes
    ----------
    family:
        The mixture family realizing the step CPF.
    cpf:
        Its analytic CPF (distance argument).
    f_min, f_max:
        Extremes of the CPF over the flat region ``[0, r_flat]``.
    tail:
        Maximum CPF value at distances ``>= r_cut``.
    weights:
        Mixture weights over the ``k = 0..K`` components (the final entry
        is the never-collide slack component).
    ks:
        Bucket shifts of the components.
    """

    family: DSHFamily
    cpf: CPF
    f_min: float
    f_max: float
    tail: float
    weights: np.ndarray
    ks: tuple[int, ...]


def step_quality(
    cpf: CPF, r_flat: float, r_cut: float, grid_points: int = 200
) -> tuple[float, float, float]:
    """Evaluate flatness and tail of a distance CPF.

    Returns ``(f_min, f_max, tail)`` with the extremes taken over
    ``[0, r_flat]`` and the tail over ``[r_cut, 3 r_cut]``.
    """
    check_positive(r_flat, "r_flat")
    if r_cut <= r_flat:
        raise ValueError(f"r_cut must exceed r_flat, got {r_cut} <= {r_flat}")
    flat_grid = np.linspace(0.0, r_flat, grid_points)
    tail_grid = np.linspace(r_cut, 3.0 * r_cut, grid_points)
    flat_vals = cpf(flat_grid)
    tail_vals = cpf(tail_grid)
    return float(flat_vals.min()), float(flat_vals.max()), float(tail_vals.max())


def design_step_family(
    d: int,
    r_flat: float,
    level: float,
    n_components: int = 6,
    w: float | None = None,
    grid_points: int = 80,
) -> StepFamilyDesign:
    """Design a mixture of shifted Euclidean families that is ~``level``
    flat on ``[0, r_flat]`` and decays beyond.

    Parameters
    ----------
    d:
        Ambient dimension.
    r_flat:
        Right end of the flat region.
    level:
        Target collision probability on the flat region (e.g. ``1/t`` for
        the privacy protocol of Section 6.4); must satisfy
        ``0 < level <= 0.5`` so that the mixture has enough headroom.
    n_components:
        Number of shifted components ``k = 0 .. n_components - 1``.
    w:
        Bucket width; default ``2 r_flat / n_components`` spreads the
        component peaks across the flat region with enough overlap for a
        near-perfectly flat fit (``f_max / f_min <~ 1.02`` in practice).
    grid_points:
        Fitting grid resolution on ``[0, r_flat]``.

    Notes
    -----
    Weights solve ``min_w ||A w - level||_2`` s.t. ``w >= 0`` (NNLS) where
    ``A[j, i] = f_{k_i}(delta_j)``; leftover mass goes to a never-collide
    component so the weights form a probability vector (Lemma 1.4(b)).
    """
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    check_positive(r_flat, "r_flat")
    if not 0.0 < level <= 0.5:
        raise ValueError(f"level must lie in (0, 0.5], got {level}")
    if n_components < 2:
        raise ValueError(f"need at least 2 components, got {n_components}")
    if w is None:
        w = 2.0 * r_flat / n_components
    check_positive(w, "w")

    ks = tuple(range(n_components))
    cpfs = [ShiftedEuclideanCPF(k, w) for k in ks]
    grid = np.linspace(0.0, r_flat, grid_points)
    design_matrix = np.column_stack([c(grid) for c in cpfs])
    target = np.full(grid_points, level)
    weights, _ = nnls(design_matrix, target)
    total = float(weights.sum())
    if total > 1.0:
        weights = weights / total  # keep a probability vector (flat level drops)
    slack = max(0.0, 1.0 - float(weights.sum()))

    components: list[DSHFamily] = [
        ShiftedGaussianProjection(d, w, k=k) for k in ks
    ]
    components.append(ConstantCollisionFamily(0.0))
    all_weights = np.concatenate([weights, [slack]])
    all_weights = all_weights / all_weights.sum()
    family = MixtureFamily(components, all_weights)
    cpf = MixtureCPF(cpfs + [ConstantCPF(0.0, "distance")], all_weights)
    f_min, f_max, tail = step_quality(cpf, r_flat, 2.0 * r_flat)
    return StepFamilyDesign(
        family=family,
        cpf=cpf,
        f_min=f_min,
        f_max=f_max,
        tail=tail,
        weights=all_weights,
        ks=ks,
    )
