"""Spec-driven construction of every Section 6 application index.

One facade over the whole index layer, mirroring the index-factory surface
of production ANN libraries: an :class:`IndexSpec` names a *kind* (which
data structure), a *family* (which registered DSH family backs it, see
:mod:`repro.families.registry`), and plain serializable parameters —
``to_dict`` / ``from_dict`` round-trip exactly, so a serving process can
rebuild an identical index (same seed, same hash pairs, same answers) from
config alone.

Kinds
-----
``raw``
    The bare Theorem 6.1 candidate machine (:class:`~repro.index.DSHIndex`).
``annulus``
    Approximate annulus search (:class:`~repro.index.AnnulusIndex`);
    options: ``interval`` (required), ``proximity`` (a name from
    :data:`PROXIMITIES`; defaults to ``"inner_product"`` for the
    ``annulus_sphere`` family), ``budget_factor``.
``hyperplane``
    Near-orthogonal-vector queries (:class:`~repro.index.HyperplaneIndex`);
    options: ``alpha``, ``t`` (the family is the Section 6.2 sphere family,
    built internally).
``range_reporting``
    Output-sensitive range reporting
    (:class:`~repro.index.RangeReportingIndex`); options: ``r_report``,
    ``distance`` (a name from :data:`PROXIMITIES`).

Every built index satisfies the :class:`~repro.index.queryable.Queryable`
protocol — ``query(point)`` and ``batch_query(points)`` with
stats-carrying results — and remembers its spec as ``index.spec``.

Quickstart::

    from repro.api import build_index

    index = build_index(
        points, kind="annulus", family="annulus_sphere",
        t=1.7, interval=(0.35, 0.75), n_tables=150, rng=7,
    )
    results = index.batch_query(queries)       # vectorized multi-query
    config = index.spec.to_dict()              # -> JSON-able dict
    clone = IndexSpec.from_dict(config).build(points)   # identical index
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.families.registry import (
    check_power,
    family_entry,
    family_names,
    make_family,
    validate_family_params,
)
from repro.index.annulus import (
    AnnulusIndex,
    sphere_family_for_interval,
    sphere_peak_placement,
)
from repro.index.backends import BACKENDS
from repro.index.hyperplane import HyperplaneIndex
from repro.index.lsh_index import DSHIndex
from repro.index.persistence import (
    FORMAT_VERSION,
    IndexIntegrityError,
    classify_archive_error,
    integrity_record,
    read_arrays,
    verify_integrity,
    write_arrays,
)
from repro.index.queryable import Queryable

if TYPE_CHECKING:  # serving imports api lazily; keep the cycle type-only
    from repro.serving.options import ServingOptions
from repro.index.range_reporting import RangeReportingIndex

__all__ = [
    "PROXIMITIES",
    "IndexSpec",
    "IndexIntegrityError",
    "build_index",
    "register_proximity",
    "index_paths",
    "save_index",
    "load_index",
    "verify_saved_index",
]

SPEC_VERSION = 1


def _inner_product(query: np.ndarray, points: np.ndarray) -> np.ndarray:
    return points @ query


def _euclidean_distance(query: np.ndarray, points: np.ndarray) -> np.ndarray:
    return np.linalg.norm(points - query, axis=1)


def _hamming_distance(query: np.ndarray, points: np.ndarray) -> np.ndarray:
    return np.count_nonzero(points != query, axis=1)


#: Named row-wise proximity / distance functions
#: ``(query (d,), points (m, d)) -> (m,)``.  Specs refer to these by name so
#: they serialize; :func:`register_proximity` adds custom ones.
PROXIMITIES: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "inner_product": _inner_product,
    "euclidean_distance": _euclidean_distance,
    "hamming_distance": _hamming_distance,
}


def register_proximity(
    name: str,
    func: Callable[[np.ndarray, np.ndarray], np.ndarray],
    overwrite: bool = False,
) -> None:
    """Register a named proximity so specs using it stay serializable."""
    if name in PROXIMITIES and not overwrite:
        raise ValueError(
            f"proximity {name!r} is already registered; pass overwrite=True"
        )
    PROXIMITIES[name] = func


def _resolve_proximity(spec_value: Any) -> Callable:
    if callable(spec_value):
        return spec_value
    try:
        return PROXIMITIES[spec_value]
    except KeyError:
        raise ValueError(
            f"unknown proximity {spec_value!r}; registered: "
            f"{sorted(PROXIMITIES)} (or pass a callable, which is not "
            "serializable)"
        ) from None


def _plain(value: Any) -> Any:
    """Recursively coerce numpy scalars (and tuples) to JSON-able builtins;
    anything else passes through unchanged."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, dict):
        return {k: _plain(v) for k, v in value.items()}
    return value


KINDS = ("raw", "annulus", "hyperplane", "range_reporting")

# Option keys each kind accepts: {name: required}.
_KIND_OPTIONS: dict[str, dict[str, bool]] = {
    "raw": {},
    "annulus": {"interval": True, "proximity": False, "budget_factor": False},
    "hyperplane": {"alpha": True, "t": True, "budget_factor": False},
    "range_reporting": {"r_report": True, "distance": True},
}

# Kinds whose spec carries a family name (hyperplane builds its own).
_FAMILY_KINDS = ("raw", "annulus", "range_reporting")


@dataclass(frozen=True)
class IndexSpec:
    """A complete, serializable recipe for one application index.

    Attributes
    ----------
    kind:
        One of :data:`KINDS`.
    family:
        Registered family name (``None`` for ``kind="hyperplane"``, which
        derives its own Section 6.2 family from ``alpha``/``t``).
    family_params:
        Flat parameters for the family's validated dataclass, plus the
        generic ``power`` (Lemma 1.4(a) concatenation count).
    n_tables:
        Repetition count ``L``.
    backend:
        Storage backend name (``"dict"`` or ``"packed"``).
    seed:
        Integer seed for sampling the hash pairs; two builds of the same
        spec over the same points answer queries identically.  ``None``
        draws fresh entropy (the spec still serializes, but rebuilds are
        not reproducible).
    shards:
        Partition the point set into this many contiguous shards, each
        backed by its own index over identical hash pairs, served by
        :class:`~repro.serving.sharded.ShardedIndex` (``build`` returns one
        when ``shards > 1``).  Requires ``kind="raw"`` and a fixed ``seed``
        (all shards must sample the same pairs for the merged candidate
        streams to match the unsharded index exactly).
    options:
        Kind-specific options (see module docstring).
    """

    kind: str
    family: str | None = None
    family_params: dict[str, Any] = field(default_factory=dict)
    n_tables: int = 1
    backend: str = "packed"
    seed: int | None = None
    shards: int = 1
    options: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown kind {self.kind!r}; expected one of {KINDS}")
        if self.n_tables < 1:
            raise ValueError(f"n_tables must be >= 1, got {self.n_tables}")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; available: {sorted(BACKENDS)}"
            )
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.shards > 1:
            if self.kind != "raw":
                raise ValueError(
                    f"shards > 1 currently requires kind='raw', got "
                    f"kind={self.kind!r}"
                )
            if self.seed is None:
                raise ValueError(
                    "shards > 1 needs a fixed integer seed: every shard "
                    "must sample identical hash pairs for the merged "
                    "candidate streams to match the unsharded index"
                )
        if self.seed is not None and not isinstance(self.seed, (int, np.integer)):
            raise ValueError(
                f"seed must be an int or None (specs must serialize), "
                f"got {type(self.seed).__name__}"
            )
        if self.kind in _FAMILY_KINDS:
            if self.family is None:
                raise ValueError(
                    f"kind {self.kind!r} needs a family; registered: "
                    f"{family_names()}"
                )
            params = dict(self.family_params)
            check_power(params.pop("power", 1))
            validate_family_params(self.family, params)
        elif self.family is not None:
            raise ValueError(
                f"kind {self.kind!r} builds its own family; family must be None"
            )
        allowed = _KIND_OPTIONS[self.kind]
        unknown = set(self.options) - set(allowed)
        if unknown:
            raise ValueError(
                f"unknown option(s) {sorted(unknown)} for kind {self.kind!r}; "
                f"accepted: {sorted(allowed)}"
            )
        missing = {k for k, req in allowed.items() if req} - set(self.options)
        if missing:
            raise ValueError(
                f"missing required option(s) {sorted(missing)} for kind "
                f"{self.kind!r}"
            )
        if "interval" in self.options:
            lo, hi = self.options["interval"]
            if not lo < hi:
                raise ValueError(
                    f"interval must satisfy lo < hi, got {(lo, hi)}"
                )

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (JSON-able); inverse of :meth:`from_dict`.
        Numpy scalars in parameters are coerced to builtins."""
        options = dict(self.options)
        if "interval" in options:
            options["interval"] = [float(v) for v in options["interval"]]
        for key in ("proximity", "distance"):
            if key in options and callable(options[key]):
                raise ValueError(
                    f"option {key!r} is a bare callable; register it with "
                    "repro.api.register_proximity and use its name to make "
                    "the spec serializable"
                )
        return {
            "version": SPEC_VERSION,
            "kind": self.kind,
            "family": self.family,
            "family_params": _plain(dict(self.family_params)),
            "n_tables": int(self.n_tables),
            "backend": self.backend,
            "seed": None if self.seed is None else int(self.seed),
            "shards": int(self.shards),
            "options": _plain(options),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "IndexSpec":
        """Rebuild (and re-validate) a spec from :meth:`to_dict` output."""
        data = dict(data)
        version = data.pop("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ValueError(
                f"unsupported spec version {version!r} (this build reads "
                f"version {SPEC_VERSION})"
            )
        unknown = set(data) - {
            "kind", "family", "family_params", "n_tables", "backend",
            "seed", "shards", "options",
        }
        if unknown:
            raise ValueError(f"unknown spec field(s): {sorted(unknown)}")
        options = dict(data.get("options", {}))
        if "interval" in options:
            options["interval"] = tuple(options["interval"])
        return cls(
            kind=data["kind"],
            family=data.get("family"),
            family_params=dict(data.get("family_params", {})),
            n_tables=data.get("n_tables", 1),
            backend=data.get("backend", "packed"),
            seed=data.get("seed"),
            shards=data.get("shards", 1),
            options=options,
        )

    # -- construction ----------------------------------------------------

    def _make_family(self):
        params = dict(self.family_params)
        power = params.pop("power", 1)
        return make_family(self.family, power=power, **params)

    def build(
        self, points: np.ndarray, workers: int | None = None
    ) -> Queryable:
        """Build the index described by this spec over ``points``.

        The returned object satisfies
        :class:`~repro.index.queryable.Queryable` and carries this spec as
        ``index.spec``.  ``workers`` threads the per-table build hashing
        (see :meth:`DSHIndex.build`); with ``shards > 1`` it also sets the
        shard-build parallelism and the result is a
        :class:`~repro.serving.sharded.ShardedIndex`.
        """
        if self.shards > 1:
            from repro.serving.sharded import ShardedIndex

            return ShardedIndex(points, self, build_workers=workers)
        opts = self.options
        if self.kind == "raw":
            index = DSHIndex(
                self._make_family(),
                n_tables=self.n_tables,
                rng=self.seed,
                backend=self.backend,
            ).build(points, workers=workers)
        elif self.kind == "annulus":
            proximity = opts.get("proximity")
            if proximity is None:
                if self.family != "annulus_sphere":
                    raise ValueError(
                        "kind='annulus' needs an explicit proximity option "
                        f"for family {self.family!r}; registered proximities: "
                        f"{sorted(PROXIMITIES)}"
                    )
                proximity = "inner_product"
            index = AnnulusIndex(
                points,
                self._make_family(),
                interval=tuple(opts["interval"]),
                proximity=_resolve_proximity(proximity),
                n_tables=self.n_tables,
                budget_factor=opts.get("budget_factor", 8.0),
                rng=self.seed,
                backend=self.backend,
                workers=workers,
            )
        elif self.kind == "hyperplane":
            index = HyperplaneIndex(
                points,
                alpha=opts["alpha"],
                t=opts["t"],
                n_tables=self.n_tables,
                budget_factor=opts.get("budget_factor", 8.0),
                rng=self.seed,
                backend=self.backend,
                workers=workers,
            )
        else:  # range_reporting
            index = RangeReportingIndex(
                points,
                self._make_family(),
                r_report=opts["r_report"],
                distance=_resolve_proximity(opts["distance"]),
                n_tables=self.n_tables,
                rng=self.seed,
                backend=self.backend,
                workers=workers,
            )
        index.spec = self
        return index


def build_index(
    points: np.ndarray,
    *,
    kind: str = "raw",
    family: str | None = None,
    n_tables: int,
    backend: str = "packed",
    rng: int | None = None,
    shards: int = 1,
    workers: int | None = None,
    **params: Any,
) -> DSHIndex | AnnulusIndex | HyperplaneIndex | RangeReportingIndex:
    """Build any application index from a kind, a family name, and flat
    parameters — the single construction entry point.

    Remaining keyword arguments are routed automatically: names matching
    the family's parameter dataclass (plus ``power``) become family
    parameters, names matching the kind's options become options, anything
    else raises with both accepted sets.  Two conveniences keep call sites
    terse:

    * ``d`` is inferred from ``points`` when the family needs it and it is
      omitted;
    * for ``kind="annulus"`` with ``family="annulus_sphere"``, an omitted
      ``alpha_max`` is placed at the Theorem 6.4 geometric midpoint of the
      reporting ``interval``.

    The resulting index carries its full, explicit :class:`IndexSpec` as
    ``index.spec`` (``index.spec.to_dict()`` is the serving config).
    """
    points = np.atleast_2d(np.asarray(points))
    if rng is not None and not isinstance(rng, (int, np.integer)):
        raise TypeError(
            "build_index takes an int seed (or None) so the spec can "
            "serialize; pass a generator to the index classes directly if "
            "you need one"
        )
    allowed_options = _KIND_OPTIONS.get(kind)
    if allowed_options is None:
        raise ValueError(f"unknown kind {kind!r}; expected one of {KINDS}")

    family_fields: set[str] = set()
    if kind in _FAMILY_KINDS:
        if family is None:
            raise ValueError(
                f"kind {kind!r} needs a family; registered: {family_names()}"
            )
        family_fields = {
            f.name for f in dataclasses.fields(family_entry(family).params_type)
        } | {"power"}
    elif family is not None:
        raise ValueError(f"kind {kind!r} builds its own family; omit family=")

    family_params: dict[str, Any] = {}
    options: dict[str, Any] = {}
    for key, value in params.items():
        in_family = key in family_fields
        in_options = key in allowed_options
        if in_family and in_options:
            raise ValueError(
                f"parameter {key!r} is ambiguous between family "
                f"{family!r} and kind {kind!r} options; build an IndexSpec "
                "explicitly"
            )
        if in_family:
            family_params[key] = value
        elif in_options:
            options[key] = value
        else:
            raise ValueError(
                f"unknown parameter {key!r} for kind={kind!r}, "
                f"family={family!r}; family parameters: "
                f"{sorted(family_fields)}, options: {sorted(allowed_options)}"
            )

    if "d" in family_fields and "d" not in family_params:
        family_params["d"] = int(points.shape[1])
    if (
        kind == "annulus"
        and family == "annulus_sphere"
        and "alpha_max" not in family_params
        and "interval" in options
    ):
        family_params["alpha_max"] = sphere_peak_placement(
            tuple(options["interval"])
        )

    spec = IndexSpec(
        kind=kind,
        family=family,
        family_params=family_params,
        n_tables=n_tables,
        backend=backend,
        seed=None if rng is None else int(rng),
        shards=shards,
        options=options,
    )
    return spec.build(points, workers=workers)


# -- persistence ---------------------------------------------------------

# Array-key prefix separating backend payload from application arrays
# (points) inside a saved index's .npz.
_BACKEND_PREFIX = "backend_"


def index_paths(path: str | pathlib.Path) -> tuple[pathlib.Path, pathlib.Path]:
    """Resolve a save/load base path to its ``(.npz, .json)`` pair.  The
    base may be given with or without either suffix; any other dot in the
    name (e.g. a ``.shard0`` shard qualifier) is part of the base, so the
    suffixes are appended, never substituted."""
    base = pathlib.Path(path)
    name = base.name
    for suffix in (".npz", ".json"):
        if name.lower().endswith(suffix):
            name = name[: -len(suffix)]
            break
    return base.with_name(name + ".npz"), base.with_name(name + ".json")


def _inner_dsh_index(index) -> DSHIndex:
    """The Theorem 6.1 machine inside any application index."""
    if isinstance(index, DSHIndex):
        return index
    if isinstance(index, HyperplaneIndex):
        return index._annulus._index
    if isinstance(index, (AnnulusIndex, RangeReportingIndex)):
        return index._index
    raise TypeError(
        f"cannot persist {type(index).__name__}; expected an index built "
        "by repro.api (DSHIndex, AnnulusIndex, HyperplaneIndex, "
        "RangeReportingIndex, or ShardedIndex)"
    )


def save_index(index: Queryable, path: str | pathlib.Path) -> pathlib.Path:
    """Persist a built index as ``<path>.npz`` + ``<path>.json``.

    The ``.npz`` holds the storage backend's table arrays (for the packed
    backend: the CSR ``fingerprints``/``offsets``/``point_ids`` layout,
    verbatim) plus, for application kinds, the ``points`` array their
    proximity checks read.  The JSON sidecar carries everything
    non-array: the :class:`IndexSpec` dict and the sampled-pair RNG state,
    from which :func:`load_index` revives identical hash pairs.

    Only indexes carrying a spec (built via :func:`build_index` /
    :meth:`IndexSpec.build`) can be saved — the spec is what makes the
    family reconstructible.  Returns the sidecar path.
    """
    from repro.serving.sharded import ShardedIndex

    if isinstance(index, ShardedIndex):
        return index.save(path)
    spec = getattr(index, "spec", None)
    if spec is None:
        raise ValueError(
            "index has no spec; only indexes built through repro.api "
            "(build_index / IndexSpec.build) can be saved"
        )
    inner = _inner_dsh_index(index)
    arrays = {
        _BACKEND_PREFIX + key: value
        for key, value in inner._backend.export_arrays().items()
    }
    if spec.kind != "raw":
        points = (
            index._annulus.points
            if isinstance(index, HyperplaneIndex)
            else index.points
        )
        arrays["points"] = points
    npz_path, json_path = index_paths(path)
    write_arrays(npz_path, arrays)
    sidecar = {
        "format": FORMAT_VERSION,
        "layout": "single",
        "spec": spec.to_dict(),
        "pair_rng_state": inner.pair_rng_state,
        "n_points": int(inner.n_points),
        "dim": int(inner.dim),
        "integrity": integrity_record(npz_path, arrays),
    }
    json_path.write_text(json.dumps(sidecar, indent=2))
    return json_path


def _revive(spec: IndexSpec, sidecar: dict, arrays: dict):
    """Reconstruct the application object around a loaded backend — the
    load-time mirror of :meth:`IndexSpec.build`, with zero hashing."""
    backend = BACKENDS[spec.backend]()
    backend.import_arrays(
        {
            key[len(_BACKEND_PREFIX):]: value
            for key, value in arrays.items()
            if key.startswith(_BACKEND_PREFIX)
        }
    )
    n_points = int(sidecar["n_points"])
    dim = int(sidecar["dim"])
    state = sidecar["pair_rng_state"]
    opts = spec.options

    def inner(family):
        return DSHIndex.from_state(
            family,
            spec.n_tables,
            pair_rng_state=state,
            backend=backend,
            n_points=n_points,
            dim=dim,
        )

    if spec.kind == "raw":
        return inner(spec._make_family())
    points = arrays["points"]
    if spec.kind == "annulus":
        proximity = opts.get("proximity")
        if proximity is None:
            proximity = "inner_product"
        return AnnulusIndex._restore(
            points=points,
            interval=tuple(opts["interval"]),
            proximity=_resolve_proximity(proximity),
            budget_factor=opts.get("budget_factor", 8.0),
            index=inner(spec._make_family()),
        )
    if spec.kind == "hyperplane":
        alpha = float(opts["alpha"])
        family = sphere_family_for_interval(dim, (-alpha, alpha), opts["t"])
        annulus = AnnulusIndex._restore(
            points=points,
            interval=(-alpha, alpha),
            proximity=_resolve_proximity("inner_product"),
            budget_factor=opts.get("budget_factor", 8.0),
            index=inner(family),
        )
        return HyperplaneIndex._restore(alpha=alpha, annulus=annulus)
    # range_reporting
    return RangeReportingIndex._restore(
        points=points,
        r_report=float(opts["r_report"]),
        distance=_resolve_proximity(opts["distance"]),
        index=inner(spec._make_family()),
    )


def _check_sidecar_format(sidecar: dict, json_path: pathlib.Path) -> None:
    """Shared format-version gate for sidecars and shard manifests."""
    version = sidecar.get("format")
    if version != FORMAT_VERSION:
        raise IndexIntegrityError(
            f"unsupported index format {version!r} (this build reads "
            f"format {FORMAT_VERSION})",
            kind="manifest",
        )


def _read_arrays_checked(
    npz_path: pathlib.Path, mmap: bool
) -> dict[str, np.ndarray]:
    """``read_arrays`` with unreadable-archive errors classified: a
    bundle that cannot even be parsed is a damaged copy, and the caller
    deserves :class:`IndexIntegrityError` (``kind`` separating member
    CRC failures from truncation), not a zipfile internal."""
    import zipfile

    try:
        return read_arrays(npz_path, mmap=mmap)
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, EOFError, OSError, ValueError, KeyError) as exc:
        raise classify_archive_error(npz_path, exc) from exc


def verify_saved_index(
    path: str | pathlib.Path, *, verify: str = "eager"
) -> None:
    """Integrity-probe a saved index without reviving it.

    For a single-index save: checks the sidecar format and runs
    :func:`repro.index.persistence.verify_integrity` at the requested
    level (``"eager"`` re-checksums every member; ``"lazy"`` is the O(1)
    size/structure check; ``"off"`` only validates the format version).
    For a sharded manifest: validates manifest coherence (shard count,
    bounds) and probes every shard file recursively.  Raises
    :class:`IndexIntegrityError` (or :class:`FileNotFoundError` for
    missing files) on the first problem; returns ``None`` when healthy.
    """
    npz_path, json_path = index_paths(path)
    sidecar = json.loads(json_path.read_text())
    _check_sidecar_format(sidecar, json_path)
    if sidecar.get("layout") == "sharded":
        from repro.serving.sharded import check_manifest_coherence

        shard_names = check_manifest_coherence(sidecar, json_path)
        for name in shard_names:
            verify_saved_index(json_path.parent / name, verify=verify)
        return
    verify_integrity(npz_path, sidecar.get("integrity"), mode=verify)


def load_index(
    path: str | pathlib.Path,
    mmap: bool | None = None,
    workers: int | None = None,
    verify: str | None = None,
    on_shard_failure: str | None = None,
    *,
    options: "ServingOptions | None" = None,
) -> Queryable:
    """Revive a :func:`save_index` index — zero-copy, O(1) in ``n``.

    Serving configuration arrives as one frozen
    :class:`~repro.serving.options.ServingOptions` (``options=``); the
    loose ``mmap=`` / ``workers=`` / ``verify=`` / ``on_shard_failure=``
    keywords still work for one release via a
    :class:`DeprecationWarning` shim, but mixing them with ``options=``
    raises ``ValueError``.

    With ``options.mmap`` true (default) the table arrays (and ``points`` for
    application kinds) are read-only memory maps into the ``.npz``: cold
    start costs file opens and header parses, not a rebuild's ``O(L n)``
    hash evaluations, and concurrent serving processes share the pages.
    The loaded index answers every query byte-identically to the original
    (same candidates, same order, same stats).

    ``verify`` selects the integrity level the bundle is held to:
    ``"lazy"`` (default) runs the O(1) structural checks — recorded file
    size, readable archive — catching truncated or partially-copied
    bundles without sacrificing the O(1) cold start; ``"eager"``
    additionally re-checksums every member against the sidecar's CRC-32
    records (reads all bytes — use for untrusted replicas); ``"off"``
    skips both.  Failures raise
    :class:`~repro.index.persistence.IndexIntegrityError` whose ``kind``
    distinguishes truncation, checksum mismatch, and manifest skew.
    Bundles saved before checksums existed load under every mode.

    A sharded save (``ShardedIndex.save`` / a spec with ``shards > 1``)
    is detected from the sidecar and dispatched to
    :meth:`~repro.serving.sharded.ShardedIndex.load`; ``options.workers``
    then selects process-pool serving (it is invalid for single indexes)
    — query blocks are chunked across ``(shard, chunk)`` tasks, workers
    apply the exactness-preserving ``max_retrieved`` clip shard-locally,
    and large hit payloads return through ``multiprocessing``
    shared-memory segments rather than the executor pipe (see
    :mod:`repro.serving.sharded`).  Pool workers cache each shard by
    ``(path, mtime_ns, size)``, so re-saving a shard file in place is
    picked up on the next request.  ``options.on_shard_failure``
    (sharded pool serving only) selects what ``batch_query`` does once a
    shard's retries are exhausted: ``"raise"`` propagates the failure,
    ``"degrade"`` serves the surviving shards' exact merge with
    ``QueryStats.degraded=True`` and the failure recorded in
    ``ShardedIndex.last_health``.
    """
    from repro.serving.options import resolve_serving_options

    opts = resolve_serving_options(
        options,
        mmap=mmap,
        workers=workers,
        verify=verify,
        on_shard_failure=on_shard_failure,
    )
    npz_path, json_path = index_paths(path)
    sidecar = json.loads(json_path.read_text())
    _check_sidecar_format(sidecar, json_path)
    if sidecar.get("layout") == "sharded":
        from repro.serving.sharded import ShardedIndex

        return ShardedIndex.load(path, options=opts)
    if opts.workers is not None:
        raise ValueError(
            "workers= applies to sharded indexes only; this file holds a "
            "single index"
        )
    if opts.on_shard_failure != "raise":
        raise ValueError(
            "on_shard_failure= applies to sharded indexes only; this "
            "file holds a single index"
        )
    spec = IndexSpec.from_dict(sidecar["spec"])
    arrays = _read_arrays_checked(npz_path, mmap=opts.mmap)
    verify_integrity(
        npz_path, sidecar.get("integrity"), mode=opts.verify, arrays=arrays
    )
    index = _revive(spec, sidecar, arrays)
    index.spec = spec
    return index
