"""Lower bounds for monotone DSH (Section 3 of the paper).

* :mod:`repro.bounds.sse` — the (reverse / generalized) small-set expansion
  bounds of O'Donnell used as the analytic engine (Theorems 3.2 and 3.9).
* :mod:`repro.bounds.monotone` — the DSH lower bounds built on them:
  Theorem 1.3 / Lemma 3.5 (``f_hat(alpha) >= f_hat(0)^{(1+alpha)/(1-alpha)}``),
  Lemma 3.10 / Theorem 3.11 (the increasing direction), and the
  ``rho``-style bounds of Theorems 3.7 / 3.8 — plus exact verification
  harnesses that evaluate arbitrary families on the full Boolean cube.
"""

from repro.bounds.monotone import (
    BoundCheck,
    forward_bound_curve,
    reverse_bound_curve,
    theorem37_rho_lower_bound,
    theorem38_rho_lower_bound,
    verify_forward_bound,
    verify_reverse_bound,
)
from repro.bounds.sse import (
    generalized_sse_upper_bound,
    reverse_sse_lower_bound,
    volume_to_parameter,
)

__all__ = [
    "reverse_sse_lower_bound",
    "generalized_sse_upper_bound",
    "volume_to_parameter",
    "BoundCheck",
    "reverse_bound_curve",
    "forward_bound_curve",
    "theorem37_rho_lower_bound",
    "theorem38_rho_lower_bound",
    "verify_reverse_bound",
    "verify_forward_bound",
]
