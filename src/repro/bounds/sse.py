"""Small-set expansion bounds (Theorems 3.2 and 3.9, after O'Donnell [39]).

For sets ``A, B`` of the Hamming cube with volumes ``exp(-a^2/2)`` and
``exp(-b^2/2)`` and randomly alpha-correlated ``(x, y)``:

* **Reverse SSE (Theorem 3.2)** — for ``0 <= alpha <= 1``:

      Pr[x in A, y in B] >= exp( -1/2 (a^2 + 2 alpha a b + b^2)/(1 - alpha^2) ).

* **Generalized SSE (Theorem 3.9)** — for ``0 <= alpha b <= a <= b``:

      Pr[x in A, y in B] <= exp( -1/2 (a^2 - 2 alpha a b + b^2)/(1 - alpha^2) ).

  (The paper's text displays ">=" here; this is a typesetting slip — the
  generalized SSE theorem is an *upper* bound, and only an upper bound makes
  Lemma 3.10's ``f_hat(alpha) <= f_hat(0)^{(1-alpha)/(1+alpha)}`` derivable.
  We implement it as the upper bound.)

Both are verified exactly against noise-operator probabilities in the test
suite and benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_in_closed_interval

__all__ = [
    "volume_to_parameter",
    "reverse_sse_lower_bound",
    "generalized_sse_upper_bound",
]


def volume_to_parameter(volume: float) -> float:
    """The ``a >= 0`` with ``volume = exp(-a^2/2)`` (inverse of the volume
    parameterization used by both theorems)."""
    if not 0.0 < volume <= 1.0:
        raise ValueError(f"volume must lie in (0, 1], got {volume}")
    return float(np.sqrt(max(0.0, -2.0 * np.log(volume))))


def reverse_sse_lower_bound(vol_a: float, vol_b: float, alpha: float) -> float:
    """Theorem 3.2 lower bound on ``Pr[x in A, y in B]``.

    Parameters
    ----------
    vol_a, vol_b:
        Set volumes in ``(0, 1]``.
    alpha:
        Correlation in ``[0, 1)``.
    """
    check_in_closed_interval(alpha, 0.0, 1.0 - 1e-12, "alpha")
    a = volume_to_parameter(vol_a)
    b = volume_to_parameter(vol_b)
    exponent = -0.5 * (a**2 + 2 * alpha * a * b + b**2) / (1.0 - alpha**2)
    return float(np.exp(exponent))


def generalized_sse_upper_bound(vol_a: float, vol_b: float, alpha: float) -> float:
    """Theorem 3.9 upper bound on ``Pr[x in A, y in B]``.

    Requires the theorem's applicability condition ``0 <= alpha b <= a <= b``
    (``a, b`` the volume parameters); raises ``ValueError`` otherwise.
    """
    check_in_closed_interval(alpha, 0.0, 1.0 - 1e-12, "alpha")
    a = volume_to_parameter(vol_a)
    b = volume_to_parameter(vol_b)
    if a > b:
        a, b = b, a  # the bound is symmetric; order so that a <= b
    if not alpha * b <= a + 1e-12:
        raise ValueError(
            f"Theorem 3.9 requires alpha*b <= a <= b; got a={a:.4f}, b={b:.4f}, "
            f"alpha={alpha}"
        )
    exponent = -0.5 * (a**2 - 2 * alpha * a * b + b**2) / (1.0 - alpha**2)
    return float(np.exp(exponent))
