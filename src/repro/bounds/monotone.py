"""Lower bounds for monotone DSH families (Section 3).

The central results:

* **Lemma 3.5 / Theorem 1.3** — for *every* distribution over pairs
  ``h, g : {0,1}^d -> R`` and every ``0 <= alpha < 1``:

      f_hat(alpha) >= f_hat(0) ** ((1 + alpha)/(1 - alpha)),

  where ``f_hat`` is the probabilistic CPF (Definition 3.3).  A CPF cannot
  *decrease* with similarity faster than this, no matter how asymmetric the
  family: anti-LSH has a hard speed limit, and Theorem 1.2's construction
  sits on it.
* **Lemma 3.10 / Theorem 3.11** — the mirrored statement
  ``f_hat(alpha) <= f_hat(0) ** ((1 - alpha)/(1 + alpha))``: asymmetry does
  not buy anything for *increasing* CPFs beyond classical LSH bounds.
* **Theorems 3.7 / 3.8** — the induced bounds on rho-values, recovering the
  familiar ``1/(2c - 1)`` LSH lower bound shape.

The verification harness exploits a pleasant fact: both lemmas hold for
*every* distribution over function pairs, in particular for the empirical
(uniform) distribution over any finite sample of pairs.  Evaluating sampled
pairs on the full cube and computing ``f_hat`` exactly through the noise
operator therefore yields an *exact* check with zero statistical slack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.booleancube.noise import exact_probabilistic_cpf
from repro.booleancube.walsh import enumerate_cube
from repro.core.family import DSHFamily
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_in_closed_interval

__all__ = [
    "reverse_bound_curve",
    "forward_bound_curve",
    "theorem37_rho_lower_bound",
    "theorem38_rho_lower_bound",
    "BoundCheck",
    "collect_label_pairs",
    "verify_reverse_bound",
    "verify_forward_bound",
]


def reverse_bound_curve(f_at_zero: float, alpha: float | np.ndarray) -> np.ndarray:
    """Lemma 3.5's floor: ``f_hat(0) ** ((1+alpha)/(1-alpha))``.

    Any probabilistic CPF with value ``f_at_zero`` at correlation 0 must lie
    **above** this curve for ``alpha in [0, 1)``.
    """
    if not 0.0 < f_at_zero <= 1.0:
        raise ValueError(f"f_at_zero must lie in (0, 1], got {f_at_zero}")
    alpha = np.asarray(alpha, dtype=np.float64)
    if np.any(alpha < 0) or np.any(alpha >= 1):
        raise ValueError("alpha must lie in [0, 1)")
    out = f_at_zero ** ((1.0 + alpha) / (1.0 - alpha))
    return out if out.ndim else float(out)


def forward_bound_curve(f_at_zero: float, alpha: float | np.ndarray) -> np.ndarray:
    """Lemma 3.10's ceiling: ``f_hat(0) ** ((1-alpha)/(1+alpha))``.

    Any probabilistic CPF must lie **below** this curve for
    ``alpha in [0, 1)`` — the asymmetric extension of classical LSH upper
    bounds on collision-probability growth.
    """
    if not 0.0 < f_at_zero <= 1.0:
        raise ValueError(f"f_at_zero must lie in (0, 1], got {f_at_zero}")
    alpha = np.asarray(alpha, dtype=np.float64)
    if np.any(alpha < 0) or np.any(alpha >= 1):
        raise ValueError("alpha must lie in [0, 1)")
    out = f_at_zero ** ((1.0 - alpha) / (1.0 + alpha))
    return out if out.ndim else float(out)


def theorem37_rho_lower_bound(
    alpha_minus: float, alpha_plus: float, f_plus: float = 0.0, d: int = 0
) -> float:
    """Leading term of the Theorem 3.7 bound on
    ``rho_- = log(1/f_-)/log(1/f_+)``:

        rho_- >= (1 - alpha_+) / (1 + alpha_+ - 2 alpha_-) - O(sqrt(log(1/f_+)/d)).

    Returns the leading term; when ``f_plus`` and ``d`` are supplied the
    correction magnitude ``sqrt(log(1/f_+)/d)`` is subtracted (with unit
    constant — the theorem's constant is unspecified, so treat the corrected
    value as indicative only).
    """
    check_in_closed_interval(alpha_minus, 0.0, 1.0, "alpha_minus")
    check_in_closed_interval(alpha_plus, 0.0, 1.0, "alpha_plus")
    if alpha_minus >= alpha_plus:
        raise ValueError(
            f"need alpha_minus < alpha_plus, got {alpha_minus} >= {alpha_plus}"
        )
    leading = (1.0 - alpha_plus) / (1.0 + alpha_plus - 2.0 * alpha_minus)
    if f_plus > 0.0 and d > 0:
        leading -= float(np.sqrt(np.log(1.0 / f_plus) / d))
    return float(leading)


def theorem38_rho_lower_bound(c: float) -> float:
    """The distance-form leading term ``1/(2c - 1)`` of Theorem 3.8."""
    if c <= 1.0:
        raise ValueError(f"approximation factor c must be > 1, got {c}")
    return 1.0 / (2.0 * c - 1.0)


@dataclass(frozen=True)
class BoundCheck:
    """Outcome of one bound verification at a single correlation value."""

    alpha: float
    f_hat: float
    bound: float
    satisfied: bool

    @property
    def margin(self) -> float:
        """``f_hat - bound`` (reverse) or ``bound - f_hat`` (forward),
        stored signed as computed by the harness; >= 0 when satisfied."""
        return self.f_hat - self.bound


def collect_label_pairs(
    family: DSHFamily,
    d: int,
    n_pairs: int = 32,
    rng: int | np.random.Generator | None = None,
    point_map: Callable[[np.ndarray], np.ndarray] | None = None,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Evaluate ``n_pairs`` sampled pairs of ``family`` on the full cube.

    Parameters
    ----------
    family:
        Any DSH family.
    d:
        Cube dimension (``2^d`` evaluations per function; keep ``d <= ~16``).
    n_pairs:
        Number of function pairs to sample.
    rng:
        Seed or generator.
    point_map:
        Optional map applied to the 0/1 cube points before hashing — e.g.
        :func:`repro.spaces.embeddings.hamming_to_sphere` for families
        defined on the unit sphere.

    Returns
    -------
    list of (h_labels, g_labels)
        Integer label arrays over the cube, collapsed across hash
        components, ready for
        :func:`repro.booleancube.noise.exact_probabilistic_cpf`.
    """
    rng = ensure_rng(rng)
    cube = enumerate_cube(d)
    points = cube if point_map is None else point_map(cube)
    label_pairs = []
    for pair in family.sample_pairs(n_pairs, rng):
        h_comp = pair.hash_data(points)
        g_comp = pair.hash_query(points)
        # Collapse multi-component rows to single integer labels, jointly so
        # that equal rows on either side map to equal labels.
        stacked = np.vstack([h_comp, g_comp])
        _, labels = np.unique(stacked, axis=0, return_inverse=True)
        n = cube.shape[0]
        label_pairs.append((labels[:n].astype(np.int64), labels[n:].astype(np.int64)))
    return label_pairs


def _verify(
    family: DSHFamily,
    d: int,
    alphas: Sequence[float],
    n_pairs: int,
    rng: int | np.random.Generator | None,
    point_map: Callable[[np.ndarray], np.ndarray] | None,
    direction: str,
) -> list[BoundCheck]:
    label_pairs = collect_label_pairs(family, d, n_pairs, rng, point_map)
    f_zero = exact_probabilistic_cpf(label_pairs, 0.0)
    if f_zero <= 0.0:
        raise ValueError(
            "f_hat(0) = 0 for the sampled pairs; the bound is vacuous "
            "(try more pairs or a different family)"
        )
    checks = []
    for alpha in alphas:
        alpha = float(alpha)
        f_hat = exact_probabilistic_cpf(label_pairs, alpha)
        if direction == "reverse":
            bound = float(reverse_bound_curve(f_zero, alpha))
            ok = f_hat >= bound - 1e-9
        else:
            bound = float(forward_bound_curve(f_zero, alpha))
            ok = f_hat <= bound + 1e-9
        checks.append(BoundCheck(alpha=alpha, f_hat=f_hat, bound=bound, satisfied=ok))
    return checks


def verify_reverse_bound(
    family: DSHFamily,
    d: int,
    alphas: Sequence[float],
    n_pairs: int = 32,
    rng: int | np.random.Generator | None = None,
    point_map: Callable[[np.ndarray], np.ndarray] | None = None,
) -> list[BoundCheck]:
    """Exact check of Lemma 3.5 (``f_hat(alpha) >= f_hat(0)^{(1+a)/(1-a)}``)
    for the empirical distribution over ``n_pairs`` sampled pairs.

    Both sides are computed exactly (noise operator), so every returned
    check must be satisfied for the lemma to hold — there is no sampling
    slack in the inequality itself.
    """
    return _verify(family, d, alphas, n_pairs, rng, point_map, "reverse")


def verify_forward_bound(
    family: DSHFamily,
    d: int,
    alphas: Sequence[float],
    n_pairs: int = 32,
    rng: int | np.random.Generator | None = None,
    point_map: Callable[[np.ndarray], np.ndarray] | None = None,
) -> list[BoundCheck]:
    """Exact check of Lemma 3.10 (``f_hat(alpha) <= f_hat(0)^{(1-a)/(1+a)}``)."""
    return _verify(family, d, alphas, n_pairs, rng, point_map, "forward")
