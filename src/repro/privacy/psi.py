"""Private set intersection (PSI) substrate.

Section 6.4 reduces private distance estimation to PSI and cites
linear-complexity protocols ([24], [26], [43]).  Reimplementing the
underlying cryptography (oblivious PRFs, homomorphic encryption) is outside
the scope of the paper's contribution; what the paper *uses* is the PSI
functionality and its privacy contract:

    both parties learn the intersection of their key sets — and nothing
    else about the other party's remaining items.

We therefore implement a **semi-honest salted-hash PSI simulation**: a
shared random salt (standing in for the protocol's shared keying material)
is hashed with every item; the parties exchange digests and intersect them.
Non-intersecting digests are preimage-hidden exactly as in the real
protocols' idealized functionality.  The simulation preserves everything
the paper analyses — intersection cardinality, false positive/negative
behaviour of the distance protocol, and the ``O(log(1/eps) log t)``-bit
leakage accounting — while substituting the cryptographic transport
(documented in DESIGN.md).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.utils.rng import ensure_rng

__all__ = ["PSIResult", "run_psi", "salted_digests"]


def salted_digests(items: Iterable[bytes], salt: bytes) -> dict[bytes, bytes]:
    """Map each item to its salted SHA-256 digest.

    The salt plays the role of the shared keying material of a keyed-PRF
    PSI; without it digests of low-entropy items would be invertible by
    dictionary attack.
    """
    out: dict[bytes, bytes] = {}
    for item in items:
        if not isinstance(item, bytes):
            raise TypeError(f"PSI items must be bytes, got {type(item).__name__}")
        out[hashlib.sha256(salt + item).digest()] = item
    return out


@dataclass(frozen=True)
class PSIResult:
    """Outcome of one PSI execution.

    Attributes
    ----------
    intersection:
        The common items (as bytes), the only substantive information
        either party learns.
    size_a, size_b:
        Input set sizes (set cardinalities are revealed by any
        linear-communication PSI; we account for them).
    leaked_bits:
        Accounting of the information content revealed to each party:
        the intersection items themselves plus the other party's set size
        (``|I| * 256`` digest bits is an upper bound; the distance protocol
        of Section 6.4 counts ``O(log(1/eps) log t)`` bits because its items
        are ``(index, hash value)`` pairs of ``O(log t)`` bits each).
    """

    intersection: frozenset[bytes]
    size_a: int
    size_b: int
    leaked_bits: float


def run_psi(
    set_a: Iterable[bytes],
    set_b: Iterable[bytes],
    rng: int | np.random.Generator | None = None,
    item_bits: float | None = None,
) -> PSIResult:
    """Execute the (simulated) semi-honest PSI on two byte-string sets.

    Parameters
    ----------
    set_a, set_b:
        The two parties' items as ``bytes``.
    rng:
        Seed or generator for the shared salt.
    item_bits:
        Information content per item for the leakage accounting; defaults
        to the maximum item length in bits.

    Returns
    -------
    PSIResult
        Intersection plus leakage accounting.
    """
    rng = ensure_rng(rng)
    salt = rng.bytes(32)
    digests_a = salted_digests(set_a, salt)
    digests_b = salted_digests(set_b, salt)
    common_digests = digests_a.keys() & digests_b.keys()
    intersection = frozenset(digests_a[d] for d in common_digests)
    if item_bits is None:
        all_items = list(digests_a.values()) + list(digests_b.values())
        item_bits = 8.0 * max((len(i) for i in all_items), default=0)
    leaked = len(intersection) * float(item_bits) + np.log2(
        max(len(digests_a), 1) * max(len(digests_b), 1)
    )
    return PSIResult(
        intersection=intersection,
        size_a=len(digests_a),
        size_b=len(digests_b),
        leaked_bits=float(leaked),
    )
