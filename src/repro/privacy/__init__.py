"""Privacy-preserving distance estimation (Section 6.4).

* :mod:`repro.privacy.psi` — the private set intersection substrate: a
  semi-honest salted-hash PSI *simulation* reproducing the information flow
  of the protocols the paper cites ([24, 26]) — each party learns exactly
  the intersection — plus explicit leakage accounting.
* :mod:`repro.privacy.distance` — the DSH reduction itself: step-CPF hash
  sketches whose PSI cardinality answers "is dist(q, x) <= r?" with false
  positive rate ``delta`` and false negative rate ``epsilon``.
"""

from repro.privacy.distance import (
    PrivateDistanceEstimator,
    ProtocolDesign,
    design_protocol,
)
from repro.privacy.psi import PSIResult, run_psi

__all__ = [
    "PSIResult",
    "run_psi",
    "ProtocolDesign",
    "design_protocol",
    "PrivateDistanceEstimator",
]
