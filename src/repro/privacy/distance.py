"""Privacy-preserving distance estimation via DSH + PSI (Section 6.4).

The paper's protocol, in its own Hamming-space setting ("we can transform
this kind of question into a question about Hamming distance between
vectors"): for a step-function DSH family with collision probability
``Theta(1/t)`` at relative distances ``<= r`` and much smaller beyond
``c r``, the parties draw ``N = O(t log(1/eps))`` hash pairs
``(h_i, g_i)``, exchange the key sets ``{(i, h_i(x))}`` / ``{(i, g_i(q))}``
through PSI, and answer **Yes** ("distance at most r") iff the
intersection is non-empty.

Step family
-----------
We instantiate the step CPF entirely from the paper's Hamming toolbox
(bit-sampling + Lemma 1.4):

    f(t) = p0 (1 - t)^J      (ConstantCollision(p0) (x) BitSampling^J),

which is ``Theta(p0)``-flat on ``[0, r]`` (the hidden constant is
``e^{J r}``, reported as ``flat_ratio``) and decays *exponentially* beyond
— the property that keeps the hash count small.  Guarantees:

* false negatives: ``(1 - p_near)^N <= eps`` with
  ``p_near = p0 (1-r)^J``,
* false positives: union bound ``N p_far <= delta`` with
  ``p_far = p0 (1-c r)^J``,
* leakage: expected intersection size ``<= N p0 = e^{J r} ln(1/eps) =
  O(log(1/eps))`` — *even when* ``q = x``, because ``f(0) = p0`` stays at
  the flat level.  A classical LSH would collide on every hash for
  ``q = x`` and reveal it (the triangulation weakness of [45] the paper
  contrasts against); the bounded flat level is the privacy feature.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.combinators import ConcatenatedFamily, PoweredFamily
from repro.core.family import DSHFamily, HashPair
from repro.families.bit_sampling import BitSampling, ConstantCollisionFamily
from repro.privacy.psi import PSIResult, run_psi
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_in_open_interval

__all__ = [
    "ProtocolDesign",
    "design_protocol",
    "PrivateDistanceEstimator",
    "leakage_profile",
]


@dataclass(frozen=True)
class ProtocolDesign:
    """Parameters of one distance-estimation protocol instance.

    Attributes
    ----------
    family:
        The step-CPF family ``Const(p0) (x) BitSampling^J`` on ``{0,1}^d``.
    n_hashes:
        Number ``N`` of hash pairs per sketch.
    p_near:
        Minimum collision probability over relative distances ``<= r``
        (attained at ``r``): ``p0 (1-r)^J``.
    p_far:
        Collision probability at relative distance ``c r`` (the tail is
        decreasing beyond): ``p0 (1-c r)^J``.
    flat_level:
        ``f(0) = p0`` — the top of the step (``Theta(1/t)`` in the paper's
        notation).
    flat_ratio:
        ``flat_level / p_near = (1-r)^{-J}`` — the constant hidden in the
        ``Theta``; the leakage bound scales with it.
    epsilon, delta:
        Target false negative / false positive probabilities.
    rho:
        Effective exponent ``log(1/p_near)/log(1/p_far)``.
    expected_leak_items:
        Expected PSI intersection size for identical points, ``N p0``.
    r, c, d, j:
        The problem and construction parameters (relative radius,
        approximation factor, dimension, bit-sampling power).
    """

    family: DSHFamily
    n_hashes: int
    p_near: float
    p_far: float
    flat_level: float
    flat_ratio: float
    epsilon: float
    delta: float
    rho: float
    expected_leak_items: float
    r: float
    c: float
    d: int
    j: int


def design_protocol(
    d: int,
    r: float,
    c: float,
    epsilon: float,
    delta: float,
    flat_level: float = 0.2,
) -> ProtocolDesign:
    """Choose ``J`` and ``N`` for targets ``(c, epsilon, delta)``.

    Parameters
    ----------
    d:
        Hamming dimension of the inputs.
    r:
        *Relative* Hamming distance threshold of the predicate
        "dist(q, x)/d <= r", in ``(0, 1)``.
    c:
        Approximation factor (``c r < 1``): distances in ``(r, c r)`` may
        answer either way.
    epsilon:
        Maximum false negative probability.
    delta:
        Maximum false positive probability.
    flat_level:
        The ``p0`` of the step (defaults to 0.2); lower values reduce
        per-hash leakage but increase ``N`` proportionally.

    Notes
    -----
    ``J`` is the smallest power with
    ``N p_far = ln(1/eps) (1-r)^{-J} ((1-cr)/(1-r))^{J} p0^{0} ... <= delta``;
    because both targets scale with ``(1 - r)^{-J}``, the search is a short
    upward scan.
    """
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    check_in_open_interval(r, 0.0, 1.0, "r")
    if c <= 1.0 or c * r >= 1.0:
        raise ValueError(f"need c > 1 and c*r < 1, got c={c}, r={r}")
    check_in_open_interval(epsilon, 0.0, 1.0, "epsilon")
    check_in_open_interval(delta, 0.0, 1.0, "delta")
    check_in_open_interval(flat_level, 0.0, 0.5 + 1e-12, "flat_level")
    log_inv_eps = float(np.log(1.0 / epsilon))
    j = 1
    while True:
        p_near = flat_level * (1.0 - r) ** j
        p_far = flat_level * (1.0 - c * r) ** j
        n_hashes = int(np.ceil(log_inv_eps / p_near))
        if n_hashes * p_far <= delta:
            break
        j += 1
        if j > 10_000:
            raise ValueError(
                "could not satisfy the false-positive target; relax delta or "
                "increase c"
            )
    family = ConcatenatedFamily(
        [ConstantCollisionFamily(flat_level), PoweredFamily(BitSampling(d), j)]
    )
    return ProtocolDesign(
        family=family,
        n_hashes=n_hashes,
        p_near=float(p_near),
        p_far=float(p_far),
        flat_level=float(flat_level),
        flat_ratio=float((1.0 - r) ** (-j)),
        epsilon=float(epsilon),
        delta=float(delta),
        rho=float(np.log(1.0 / p_near) / np.log(1.0 / p_far)),
        expected_leak_items=float(n_hashes * flat_level),
        r=float(r),
        c=float(c),
        d=int(d),
        j=int(j),
    )


class PrivateDistanceEstimator:
    """Run the Section 6.4 protocol on binary vectors.

    Parameters
    ----------
    design:
        A :class:`ProtocolDesign` (from :func:`design_protocol`).
    rng:
        Seed or generator for the shared hash functions (in a deployment
        these are jointly sampled public randomness).
    """

    def __init__(
        self, design: ProtocolDesign, rng: int | np.random.Generator | None = None
    ) -> None:
        self.design = design
        rng = ensure_rng(rng)
        self._pairs: list[HashPair] = design.family.sample_pairs(
            design.n_hashes, rng
        )
        self._psi_rng = ensure_rng(int(rng.integers(0, 2**63 - 1)))

    def _sketch(self, point: np.ndarray, query_side: bool) -> set[bytes]:
        point = np.atleast_2d(np.asarray(point))
        if point.shape[0] != 1:
            raise ValueError("sketch one point at a time")
        if point.shape[1] != self.design.d:
            raise ValueError(
                f"expected dimension {self.design.d}, got {point.shape[1]}"
            )
        items = set()
        for i, pair in enumerate(self._pairs):
            comps = pair.hash_query(point) if query_side else pair.hash_data(point)
            items.add(i.to_bytes(4, "big") + comps[0].tobytes())
        return items

    def sketch_data(self, point: np.ndarray) -> set[bytes]:
        """The data owner's sketch ``{(i, h_i(x))}`` for one binary vector."""
        return self._sketch(point, query_side=False)

    def sketch_query(self, point: np.ndarray) -> set[bytes]:
        """The querier's sketch ``{(i, g_i(q))}`` for one binary vector."""
        return self._sketch(point, query_side=True)

    def decide(
        self, data_sketch: set[bytes], query_sketch: set[bytes]
    ) -> tuple[bool, PSIResult]:
        """PSI the sketches; **Yes** iff the intersection is non-empty."""
        psi = run_psi(data_sketch, query_sketch, rng=self._psi_rng)
        return len(psi.intersection) > 0, psi

    def is_within(self, data_point: np.ndarray, query_point: np.ndarray) -> bool:
        """End-to-end convenience: sketch both vectors and decide."""
        yes, _psi = self.decide(
            self.sketch_data(data_point), self.sketch_query(query_point)
        )
        return yes

    def intersection_size(
        self, data_point: np.ndarray, query_point: np.ndarray
    ) -> int:
        """PSI intersection cardinality for one pair (leakage diagnostics)."""
        _yes, psi = self.decide(
            self.sketch_data(data_point), self.sketch_query(query_point)
        )
        return len(psi.intersection)


def leakage_profile(
    estimator: PrivateDistanceEstimator,
    distances_bits: list[int],
    trials: int = 20,
    rng: int | np.random.Generator | None = None,
) -> list[tuple[int, float]]:
    """Mean PSI intersection size as a function of the pair's distance.

    This is the observable an adversary would use in the triangulation
    attack the paper discusses against plain LSH ([45]): a CPF that varies
    strongly over ``[0, r]`` lets the intersection size *reveal* the
    distance.  For the step protocol the profile is near-flat over the
    whole near region — including distance 0 — so the observable carries
    only the one intended bit.

    Returns ``[(bits, mean_intersection_size), ...]``.
    """
    from repro.spaces import hamming

    rng = ensure_rng(rng)
    d = estimator.design.d
    profile = []
    for bits in distances_bits:
        if not 0 <= bits <= d:
            raise ValueError(f"distance {bits} outside [0, {d}]")
        sizes = []
        for _ in range(trials):
            if bits == 0:
                x = hamming.random_points(1, d, rng)
                q = x
            else:
                x, q = hamming.pairs_at_distance(1, d, bits, rng)
            sizes.append(estimator.intersection_size(x, q))
        profile.append((bits, float(np.mean(sizes))))
    return profile
