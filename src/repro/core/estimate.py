"""Monte Carlo estimation of collision probability functions.

The figures of the paper plot CPFs; this module estimates them for any
:class:`~repro.core.family.DSHFamily` by sampling function pairs and point
pairs at controlled proximity.  Confidence intervals are *cluster-robust*:
collision indicators are independent across sampled function pairs but can
be strongly correlated within one (a mixture family, for example, decides
once per function pair which sub-family is active), so the interval combines
a between-function normal interval with a Wilson interval on the raw trials
and reports the wider envelope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.family import DSHFamily
from repro.utils.rng import ensure_rng, spawn_rngs

__all__ = [
    "CollisionEstimate",
    "wilson_interval",
    "estimate_collision_probability",
    "estimate_cpf_curve",
]


def wilson_interval(
    successes: int, trials: int, z: float = 3.2905
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Parameters
    ----------
    successes, trials:
        Observed counts, ``0 <= successes <= trials``, ``trials >= 1``.
    z:
        Normal quantile; the default ``3.2905`` gives a ~99.9% interval.

    Returns
    -------
    (float, float)
        Lower and upper bounds in ``[0, 1]``; exactly ``0.0`` / ``1.0`` at
        the degenerate corners.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes must lie in [0, {trials}], got {successes}")
    p_hat = successes / trials
    denom = 1.0 + z**2 / trials
    center = (p_hat + z**2 / (2 * trials)) / denom
    half = (
        z
        * np.sqrt(p_hat * (1 - p_hat) / trials + z**2 / (4 * trials**2))
        / denom
    )
    low = 0.0 if successes == 0 else max(0.0, center - half)
    high = 1.0 if successes == trials else min(1.0, center + half)
    return low, high


@dataclass(frozen=True)
class CollisionEstimate:
    """A collision probability estimate with its sampling metadata."""

    p_hat: float
    ci_low: float
    ci_high: float
    collisions: int
    trials: int

    def contains(self, p: float) -> bool:
        """Whether ``p`` lies inside the confidence interval."""
        return self.ci_low <= p <= self.ci_high


def _cluster_interval(
    function_means: np.ndarray, z: float = 3.2905
) -> tuple[float, float]:
    """Normal interval on the mean of per-function collision rates."""
    n = function_means.size
    mean = float(np.mean(function_means))
    if n < 2:
        return 0.0, 1.0
    se = float(np.std(function_means, ddof=1) / np.sqrt(n))
    return max(0.0, mean - z * se), min(1.0, mean + z * se)


def estimate_collision_probability(
    family: DSHFamily,
    pair_sampler: Callable[[int, np.random.Generator], tuple[np.ndarray, np.ndarray]],
    n_functions: int = 50,
    pairs_per_function: int = 200,
    rng: int | np.random.Generator | None = None,
) -> CollisionEstimate:
    """Estimate ``Pr[h(x) = g(y)]`` for point pairs from ``pair_sampler``.

    Parameters
    ----------
    family:
        The DSH family under test.
    pair_sampler:
        Callable ``(n, rng) -> (x, y)`` returning ``n`` point pairs at the
        target proximity, e.g. a closure over
        :func:`repro.spaces.sphere.pairs_at_inner_product`.
    n_functions:
        Number of independent ``(h, g)`` pairs sampled from the family.
    pairs_per_function:
        Number of point pairs evaluated per function pair.
    rng:
        Seed or generator.

    Notes
    -----
    The reported confidence interval is the envelope of (a) a Wilson
    interval over all ``n_functions * pairs_per_function`` trials (exact
    when indicators are independent) and (b) a between-function normal
    interval (valid when indicators are correlated within a function pair,
    as in mixture families).  The envelope is mildly conservative but safe
    for both regimes.
    """
    if n_functions < 1 or pairs_per_function < 1:
        raise ValueError("n_functions and pairs_per_function must be >= 1")
    rng = ensure_rng(rng)
    collisions = 0
    trials = 0
    function_means = np.empty(n_functions)
    for idx, child in enumerate(spawn_rngs(rng, n_functions)):
        pair = family.sample(child)
        x, y = pair_sampler(pairs_per_function, child)
        hits = pair.collides(x, y)
        collisions += int(np.count_nonzero(hits))
        trials += hits.size
        function_means[idx] = float(np.mean(hits))
    wilson_low, wilson_high = wilson_interval(collisions, trials)
    cluster_low, cluster_high = _cluster_interval(function_means)
    return CollisionEstimate(
        p_hat=collisions / trials,
        ci_low=min(wilson_low, cluster_low),
        ci_high=max(wilson_high, cluster_high),
        collisions=collisions,
        trials=trials,
    )


def estimate_cpf_curve(
    family: DSHFamily,
    pair_sampler_factory: Callable[
        [float], Callable[[int, np.random.Generator], tuple[np.ndarray, np.ndarray]]
    ],
    xs: Sequence[float],
    n_functions: int = 50,
    pairs_per_function: int = 200,
    rng: int | np.random.Generator | None = None,
) -> list[CollisionEstimate]:
    """Estimate the CPF at each proximity value in ``xs``.

    ``pair_sampler_factory(x)`` must return a pair sampler producing point
    pairs at proximity ``x`` (inner product, distance, ... depending on the
    family).  Returns one :class:`CollisionEstimate` per entry of ``xs``.
    """
    rng = ensure_rng(rng)
    estimates = []
    for x, child in zip(xs, spawn_rngs(rng, len(list(xs)))):
        estimates.append(
            estimate_collision_probability(
                family,
                pair_sampler_factory(float(x)),
                n_functions=n_functions,
                pairs_per_function=pairs_per_function,
                rng=child,
            )
        )
    return estimates
