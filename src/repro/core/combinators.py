"""Family combinators — Lemma 1.4 and the point-transform trick.

Lemma 1.4 (proved in Appendix C.1 for the asymmetric setting):

(a) concatenating families multiplies their CPFs:
    ``f(x) = prod_i f_i(x)`` — :class:`ConcatenatedFamily`,
    with the special case of powering one family — :class:`PoweredFamily`;
(b) drawing a family from a probability distribution averages the CPFs:
    ``f(x) = sum_i p_i f_i(x)`` — :class:`MixtureFamily`.

:class:`TransformedFamily` implements the paper's other basic move: apply
deterministic maps to points before hashing.  Negating the query point turns
an LSH into an anti-LSH (Sections 2.1–2.2), and the Valiant embeddings turn
angular LSH into polynomial DSH (Theorem 5.1).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.cpf import CPF, ConstantCPF, MixtureCPF, PowerCPF, ProductCPF
from repro.core.family import DSHFamily, HashPair, as_components
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import check_probability

__all__ = [
    "ConcatenatedFamily",
    "ConstantCollisionFamily",
    "PoweredFamily",
    "MixtureFamily",
    "TransformedFamily",
    "negate_queries",
]


class ConstantCollisionFamily(DSHFamily):
    """A pair colliding with probability ``p`` independent of the points.

    The shared randomness drawn at sampling time decides: with probability
    ``p`` both sides hash everything to ``0`` (always collide), otherwise
    the data side hashes to ``0`` and the query side to ``1`` (never
    collide).  CPF: the constant ``p``.

    These are the "standard hashing" blocks of Appendix C.3 used to add a
    bias term to a CPF, and they also realize ``P(t) = a_0`` terms.  It
    lives here with the other combinators (not in
    :mod:`repro.families.bit_sampling`, which re-exports it) because the
    CPF transforms in :mod:`repro.core.transforms` build on it — a
    distance-independent block has no layer above core.
    """

    def __init__(self, p: float, arg_kind: str = "relative_distance") -> None:
        self.p = check_probability(p, "p")
        self._arg_kind = arg_kind

    def sample(self, rng: int | np.random.Generator | None = None) -> HashPair:
        """Flip the shared coin: collide everywhere or nowhere."""
        rng = ensure_rng(rng)
        collide = bool(rng.random() < self.p)

        def h(points: np.ndarray) -> np.ndarray:
            n = np.atleast_2d(np.asarray(points)).shape[0]
            return np.zeros(n, dtype=np.int64)

        def g(points: np.ndarray) -> np.ndarray:
            n = np.atleast_2d(np.asarray(points)).shape[0]
            return (
                np.zeros(n, dtype=np.int64)
                if collide
                else np.ones(n, dtype=np.int64)
            )

        return HashPair(h=h, g=g, meta={"collide": collide})

    @property
    def cpf(self) -> CPF:
        """The constant CPF ``f == p``."""
        return ConstantCPF(self.p, self._arg_kind)


def _combined_cpf_or_none(
    families: Sequence[DSHFamily], builder: Callable[[list[CPF]], CPF]
) -> CPF | None:
    cpfs = [fam.cpf for fam in families]
    if any(c is None for c in cpfs):
        return None
    try:
        return builder(cpfs)  # type: ignore[arg-type]
    except ValueError:
        # Mixed argument kinds: the combined family is still usable, it just
        # has no single-argument analytic CPF.
        return None


class ConcatenatedFamily(DSHFamily):
    """Lemma 1.4(a): hash with every sub-family; collide iff all collide.

    The sampled pair stacks the component columns of each sub-pair, so the
    collision event is the conjunction of sub-collisions and the CPF is the
    product of sub-CPFs.
    """

    def __init__(self, families: Sequence[DSHFamily]) -> None:
        self.families = list(families)
        if not self.families:
            raise ValueError("need at least one family")

    def sample(self, rng: int | np.random.Generator | None = None) -> HashPair:
        """Draw independent sub-pairs and stack their hash components."""
        rng = ensure_rng(rng)
        pairs = [fam.sample(r) for fam, r in zip(self.families, spawn_rngs(rng, len(self.families)))]

        def h(points: np.ndarray) -> np.ndarray:
            return np.hstack([p.hash_data(points) for p in pairs])

        def g(points: np.ndarray) -> np.ndarray:
            return np.hstack([p.hash_query(points) for p in pairs])

        return HashPair(h=h, g=g, meta={"parts": [p.meta for p in pairs]})

    @property
    def cpf(self) -> CPF | None:
        """Product of the sub-CPFs (``None`` if any sub-CPF is unknown)."""
        return _combined_cpf_or_none(self.families, ProductCPF)

    @property
    def is_symmetric(self) -> bool:
        """Symmetric iff every sub-family is symmetric."""
        return all(fam.is_symmetric for fam in self.families)


class PoweredFamily(ConcatenatedFamily):
    """``k``-fold concatenation of one family: CPF ``f**k``.

    This is the standard amplification ("powering") step used to push
    collision probabilities below ``1/n`` (remark after Theorem 6.1).
    """

    def __init__(self, base: DSHFamily, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        super().__init__([base] * k)
        self.base = base
        self.k = int(k)

    @property
    def cpf(self) -> CPF | None:
        """``f**k`` for base CPF ``f`` (``None`` if the base has none)."""
        base_cpf = self.base.cpf
        return None if base_cpf is None else PowerCPF(base_cpf, self.k)


class MixtureFamily(DSHFamily):
    """Lemma 1.4(b): draw sub-family ``i`` with probability ``p_i``.

    The index of the drawn sub-family is prepended as an extra hash
    component; both sides of the pair share it, so cross-family collisions
    are impossible and the CPF is exactly ``sum_i p_i f_i``.
    """

    def __init__(self, families: Sequence[DSHFamily], weights: Sequence[float]) -> None:
        self.families = list(families)
        self.weights = np.asarray(weights, dtype=np.float64).ravel()
        if len(self.families) != self.weights.size or not self.families:
            raise ValueError("families and weights must be equally sized, non-empty")
        if np.any(self.weights < 0) or not np.isclose(self.weights.sum(), 1.0, atol=1e-9):
            raise ValueError(f"weights must form a probability vector, got {weights}")

    def sample(self, rng: int | np.random.Generator | None = None) -> HashPair:
        """Draw one sub-family by weight; its index tags the components."""
        rng = ensure_rng(rng)
        index = int(rng.choice(len(self.families), p=self.weights))
        inner = self.families[index].sample(rng)

        def h(points: np.ndarray) -> np.ndarray:
            comps = inner.hash_data(points)
            tag = np.full((comps.shape[0], 1), index, dtype=np.int64)
            return np.hstack([tag, comps])

        def g(points: np.ndarray) -> np.ndarray:
            comps = inner.hash_query(points)
            tag = np.full((comps.shape[0], 1), index, dtype=np.int64)
            return np.hstack([tag, comps])

        return HashPair(h=h, g=g, meta={"mixture_index": index, **inner.meta})

    @property
    def cpf(self) -> CPF | None:
        """Weighted mixture of the sub-CPFs (``None`` if any is unknown)."""
        return _combined_cpf_or_none(
            self.families, lambda cpfs: MixtureCPF(cpfs, self.weights)
        )

    @property
    def is_symmetric(self) -> bool:
        """Symmetric iff every sub-family is symmetric."""
        return all(fam.is_symmetric for fam in self.families)


class TransformedFamily(DSHFamily):
    """Precompose a family with deterministic data/query point maps.

    Sampling draws ``(h, g)`` from ``base`` and returns
    ``(h o data_map, g o query_map)``.  With ``data_map = identity`` and
    ``query_map = negation`` this is exactly the paper's "negate the query
    point" construction; with the Valiant maps it is Theorem 5.1.

    Parameters
    ----------
    base:
        The underlying family.
    data_map, query_map:
        Vectorized maps ``(n, d) -> (n, d')`` applied before hashing.
    cpf:
        Analytic CPF of the *transformed* family, if known (the base CPF
        generally does not survive the transform).
    """

    def __init__(
        self,
        base: DSHFamily,
        data_map: Callable[[np.ndarray], np.ndarray] | None = None,
        query_map: Callable[[np.ndarray], np.ndarray] | None = None,
        cpf: CPF | None = None,
    ) -> None:
        self.base = base
        self.data_map = data_map
        self.query_map = query_map
        self._cpf = cpf

    def sample(self, rng: int | np.random.Generator | None = None) -> HashPair:
        """Draw from ``base`` and precompose the point maps."""
        inner = self.base.sample(rng)
        data_map = self.data_map
        query_map = self.query_map

        def h(points: np.ndarray) -> np.ndarray:
            pts = np.atleast_2d(np.asarray(points))
            if data_map is not None:
                pts = data_map(pts)
            return as_components(inner.h(pts))

        def g(points: np.ndarray) -> np.ndarray:
            pts = np.atleast_2d(np.asarray(points))
            if query_map is not None:
                pts = query_map(pts)
            return as_components(inner.g(pts))

        return HashPair(h=h, g=g, meta=inner.meta)

    @property
    def cpf(self) -> CPF | None:
        """The CPF supplied at construction (``None`` when unknown)."""
        return self._cpf

    @property
    def is_symmetric(self) -> bool:
        """Symmetric only when no point map is applied to either side."""
        # Even if the base is symmetric, different point maps break symmetry.
        return (
            self.base.is_symmetric
            and self.data_map is None
            and self.query_map is None
        )


def negate_queries(base: DSHFamily, cpf: CPF | None = None) -> TransformedFamily:
    """The paper's anti-LSH trick: hash queries at ``-y`` (Sections 2.1/2.2).

    For a symmetric sphere family with CPF ``f(alpha)`` the result has CPF
    ``alpha -> f(-alpha)``.
    """
    return TransformedFamily(
        base, query_map=lambda pts: -np.asarray(pts, dtype=np.float64), cpf=cpf
    )
