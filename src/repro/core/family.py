"""The distance-sensitive family interface (Definition 1.1).

A :class:`DSHFamily` is a distribution over :class:`HashPair` objects
``(h, g)``: data points are hashed with ``h``, query points with ``g``, and
the collision event is ``h(x) = g(y)``.  Classical (symmetric) LSH families
simply return pairs with ``h is g``.

Hash value convention
---------------------
``h`` and ``g`` map an ``(n, d)`` array of points to an ``(n, c)`` ``int64``
array of *hash components*; a collision means equality of **all** ``c``
components.  Concatenation (Lemma 1.4(a)) stacks component columns, and
mixtures prefix a component recording which sub-family was drawn.  Indexes
serialize component rows to bytes for hash-table bucketing.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.cpf import CPF
from repro.utils.rng import ensure_rng, spawn_rngs

__all__ = [
    "HashPair",
    "DSHFamily",
    "SymmetricFamily",
    "as_components",
    "rows_equal",
    "rows_to_keys",
    "rows_to_fingerprints",
]


def as_components(values: np.ndarray) -> np.ndarray:
    """Normalize raw hash output to the canonical ``(n, c)`` int64 layout.

    Accepts ``(n,)`` (single component) or ``(n, c)`` integer arrays.
    """
    values = np.asarray(values)
    if values.ndim == 1:
        values = values[:, None]
    if values.ndim != 2:
        raise ValueError(f"hash values must be 1-D or 2-D, got shape {values.shape}")
    if not np.issubdtype(values.dtype, np.integer):
        raise ValueError(f"hash values must be integers, got dtype {values.dtype}")
    return values.astype(np.int64, copy=False)


def rows_equal(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Boolean vector: do the ``i``-th component rows of ``a`` and ``b`` agree?"""
    a = as_components(a)
    b = as_components(b)
    if a.shape != b.shape:
        raise ValueError(f"component shape mismatch: {a.shape} vs {b.shape}")
    return np.all(a == b, axis=1)


def rows_to_keys(a: np.ndarray) -> list[bytes]:
    """Serialize each component row to a hashable ``bytes`` key (for dicts)."""
    a = np.ascontiguousarray(as_components(a))
    return [row.tobytes() for row in a]


# splitmix64 constants (Steele, Lea & Flood 2014) — the increment and the two
# multiply-xorshift rounds of the finalizer.  All arithmetic is modulo 2^64.
_SM64_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SM64_MULT_1 = np.uint64(0xBF58476D1CE4E5B9)
_SM64_MULT_2 = np.uint64(0x94D049BB133111EB)
_FINGERPRINT_SEED = np.uint64(0x51_7CC1B727220A95)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer: a bijection on uint64 that mixes
    every input bit into every output bit (~0.5 avalanche per bit)."""
    x = (x + _SM64_GAMMA).astype(np.uint64, copy=False)
    x = (x ^ (x >> np.uint64(30))) * _SM64_MULT_1
    x = (x ^ (x >> np.uint64(27))) * _SM64_MULT_2
    return x ^ (x >> np.uint64(31))


def rows_to_fingerprints(a: np.ndarray) -> np.ndarray:
    """Mix each ``(n, c)`` component row into one ``uint64`` fingerprint.

    The hot-path alternative to :func:`rows_to_keys`: instead of one Python
    ``bytes`` object per row, the whole array is folded column-by-column
    through a splitmix64 chain — ``state := splitmix64(state XOR column)``
    starting from a fixed seed — entirely in vectorized uint64 arithmetic.
    Signed ``int64`` components are reinterpreted bit-for-bit as ``uint64``,
    so negative values and values differing only in the sign/high bits are
    distinct inputs to the mixer (no information is dropped before mixing).

    Collision bound
    ---------------
    ``rows_to_keys`` is injective; a 64-bit fingerprint cannot be.  Because
    each chain step is a bijection of the running state composed with an XOR
    of the fully-mixed next component, two *distinct* rows of equal length
    collide only if an exact 64-bit cancellation occurs along the chain; for
    inputs not specifically crafted by inverting the public mixer this
    behaves like a uniform random 64-bit hash, i.e.

        P[fingerprint(u) == fingerprint(v)]  ~=  2**-64   for rows u != v,

    so a table of ``n`` points sees an expected ``<= n*(n-1)/2 * 2**-64``
    spuriously merged pairs (~6.8e-11 even at ``n = 50_000_000``).  The
    guarantee is statistical, not adversarial: splitmix64 is invertible, so
    a malicious input designer could construct collisions.  The differential
    parity suite (``tests/test_index_backends_parity.py``) cross-checks the
    fingerprint-bucketed backend against the exact-bytes dict backend, and
    ``tests/test_core_family.py`` probes the structured near-miss patterns
    (high-bit flips, negative components, column swaps) that a weak mixer
    (e.g. a sum of per-column products) would merge.
    """
    a = as_components(a)
    u = np.ascontiguousarray(a).view(np.uint64)
    state = np.full(u.shape[0], _FINGERPRINT_SEED, dtype=np.uint64)
    for j in range(u.shape[1]):
        state = _splitmix64(state ^ u[:, j])
    return state


@dataclass
class HashPair:
    """One sampled pair ``(h, g)`` from a DSH family.

    Attributes
    ----------
    h:
        Data-side hash: ``(n, d) -> (n, c)`` int64 components.
    g:
        Query-side hash with the same output layout.
    meta:
        Optional construction details (thresholds, sampled coordinates, ...)
        for debugging and tests.
    """

    h: Callable[[np.ndarray], np.ndarray]
    g: Callable[[np.ndarray], np.ndarray]
    meta: dict = field(default_factory=dict)

    def hash_data(self, points: np.ndarray) -> np.ndarray:
        """Hash data points; returns canonical ``(n, c)`` components."""
        return as_components(self.h(np.atleast_2d(np.asarray(points))))

    def hash_query(self, points: np.ndarray) -> np.ndarray:
        """Hash query points; returns canonical ``(n, c)`` components."""
        return as_components(self.g(np.atleast_2d(np.asarray(points))))

    def collides(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Row-wise collision indicator ``h(x_i) == g(y_i)``."""
        return rows_equal(self.hash_data(x), self.hash_query(y))


class DSHFamily(ABC):
    """A distribution over hash pairs with (optionally) a known CPF."""

    @abstractmethod
    def sample(self, rng: int | np.random.Generator | None = None) -> HashPair:
        """Draw one ``(h, g)`` pair."""

    def sample_pairs(
        self, n: int, rng: int | np.random.Generator | None = None
    ) -> list[HashPair]:
        """Draw ``n`` independent pairs (reproducibly from one parent seed)."""
        rng = ensure_rng(rng)
        return [self.sample(r) for r in spawn_rngs(rng, n)]

    @property
    def cpf(self) -> CPF | None:
        """The analytic CPF if known, else ``None``."""
        return None

    @property
    def is_symmetric(self) -> bool:
        """Whether sampled pairs always satisfy ``h == g`` (classical LSH)."""
        return False


class SymmetricFamily(DSHFamily):
    """Convenience base for classical LSH families: implement
    :meth:`sample_function` returning a single hash, used for both sides."""

    @abstractmethod
    def sample_function(
        self, rng: np.random.Generator
    ) -> Callable[[np.ndarray], np.ndarray]:
        """Draw one hash function ``(n, d) -> (n, c)``."""

    def sample(self, rng: int | np.random.Generator | None = None) -> HashPair:
        """Draw one hash function and use it for both sides of the pair."""
        rng = ensure_rng(rng)
        func = self.sample_function(rng)
        return HashPair(h=func, g=func)

    @property
    def is_symmetric(self) -> bool:
        """Always ``True``: both sides share one hash function."""
        return True
