"""Rho-values and sensitivity notions.

The paper measures the quality of a CPF through log-ratios of collision
probabilities:

* ``rho_plus = ln f(r) / ln f(c r)`` — the classical LSH exponent (collision
  gap towards *larger* distances; governs near-neighbor search),
* ``rho_minus = ln f(r) / ln f(r / c)`` — the "dual" exponent (gap towards
  *smaller* distances; governs anti-LSH applications, Section 4),
* ``rho_star = log(1 / f(r)) / log n`` — the query exponent of the annulus
  data structure (Theorem 6.1).

Definition 3.6 introduces ``(alpha_-, alpha_+, f_-, f_+)``-decreasingly /
increasingly sensitive families; :func:`check_decreasingly_sensitive` and
:func:`check_increasingly_sensitive` verify those properties on a grid.
"""

from __future__ import annotations

import numpy as np

from repro.core.cpf import CPF

__all__ = [
    "rho_from_probabilities",
    "rho_plus",
    "rho_minus",
    "rho_star",
    "check_decreasingly_sensitive",
    "check_increasingly_sensitive",
]


def rho_from_probabilities(p_target: float, p_other: float) -> float:
    """``ln(1/p_target) / ln(1/p_other)`` with domain checks.

    Both probabilities must lie strictly inside ``(0, 1)``.
    """
    for name, p in (("p_target", p_target), ("p_other", p_other)):
        if not 0.0 < p < 1.0:
            raise ValueError(f"{name} must lie strictly in (0, 1), got {p}")
    return float(np.log(1.0 / p_target) / np.log(1.0 / p_other))


def rho_plus(cpf: CPF, r: float, c: float) -> float:
    """``rho_+ = ln f(r) / ln f(c r)`` for a distance-style CPF.

    Requires ``c > 1`` so that ``c r`` is the *far* distance.
    """
    if c <= 1:
        raise ValueError(f"approximation factor c must be > 1, got {c}")
    return rho_from_probabilities(float(cpf(r)), float(cpf(c * r)))


def rho_minus(cpf: CPF, r: float, c: float) -> float:
    """``rho_- = ln f(r) / ln f(r / c)`` for a distance-style CPF.

    Requires ``c > 1`` so that ``r / c`` is the *near* distance.  Smaller is
    better: it measures how fast the CPF vanishes towards distance 0
    relative to its value at ``r`` (Section 4).
    """
    if c <= 1:
        raise ValueError(f"approximation factor c must be > 1, got {c}")
    return rho_from_probabilities(float(cpf(r)), float(cpf(r / c)))


def rho_star(p_at_target: float, n: int) -> float:
    """``rho* = log(1 / f(r)) / log n`` — Theorem 6.1's query exponent."""
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    if not 0.0 < p_at_target < 1.0:
        raise ValueError(f"p_at_target must lie in (0, 1), got {p_at_target}")
    return float(np.log(1.0 / p_at_target) / np.log(n))


def _grid(lo: float, hi: float, n: int) -> np.ndarray:
    return np.linspace(lo, hi, n)


def check_decreasingly_sensitive(
    cpf: CPF,
    alpha_minus: float,
    alpha_plus: float,
    f_minus: float,
    f_plus: float,
    grid_points: int = 64,
    domain: tuple[float, float] = (-1.0, 1.0),
) -> bool:
    """Definition 3.6: is the family ``(a_-, a_+, f_-, f_+)``-decreasingly
    sensitive?

    Checks on a grid that ``f(alpha) >= f_-`` for every ``alpha <= a_-`` and
    ``f(alpha) <= f_+`` for every ``alpha >= a_+`` (similarity convention:
    the CPF is decreasing in the similarity).
    """
    if not domain[0] <= alpha_minus < alpha_plus <= domain[1]:
        raise ValueError(
            f"need {domain[0]} <= alpha_- < alpha_+ <= {domain[1]}, "
            f"got {alpha_minus}, {alpha_plus}"
        )
    low_side = cpf(_grid(domain[0], alpha_minus, grid_points))
    high_side = cpf(_grid(alpha_plus, domain[1], grid_points))
    return bool(np.all(low_side >= f_minus) and np.all(high_side <= f_plus))


def check_increasingly_sensitive(
    cpf: CPF,
    alpha_minus: float,
    alpha_plus: float,
    f_minus: float,
    f_plus: float,
    grid_points: int = 64,
    domain: tuple[float, float] = (-1.0, 1.0),
) -> bool:
    """Definition 3.6, increasing direction: ``f(alpha) <= f_-`` below
    ``alpha_-`` and ``f(alpha) >= f_+`` above ``alpha_+``."""
    if not domain[0] <= alpha_minus < alpha_plus <= domain[1]:
        raise ValueError(
            f"need {domain[0]} <= alpha_- < alpha_+ <= {domain[1]}, "
            f"got {alpha_minus}, {alpha_plus}"
        )
    low_side = cpf(_grid(domain[0], alpha_minus, grid_points))
    high_side = cpf(_grid(alpha_plus, domain[1], grid_points))
    return bool(np.all(low_side <= f_minus) and np.all(high_side >= f_plus))
