"""Collision probability functions (CPFs).

Definition 1.1 of the paper: a DSH scheme for ``(X, dist)`` is a distribution
over function pairs ``(h, g)`` whose collision probability
``Pr[h(x) = g(y)]`` equals ``f(dist(x, y))`` for a CPF ``f : R -> [0, 1]``.

Different constructions parameterize ``f`` by different proximity measures,
so every :class:`CPF` carries an ``arg_kind``:

* ``"similarity"`` — inner product on the sphere / ``simH`` on the cube,
  in ``[-1, 1]`` (Sections 2, 3, 5, 6),
* ``"relative_distance"`` — relative Hamming distance in ``[0, 1]``
  (Sections 4.1, 5),
* ``"distance"`` — Euclidean distance in ``[0, inf)`` (Section 4.2).

The classes here are the *analytic* CPFs of the paper's constructions; the
Monte Carlo estimates produced by :mod:`repro.core.estimate` are compared
against them throughout the tests and benchmarks.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.utils.validation import check_probability

__all__ = [
    "ARG_KINDS",
    "CPF",
    "LambdaCPF",
    "ConstantCPF",
    "BitSamplingCPF",
    "AntiBitSamplingCPF",
    "SimHashCPF",
    "PolynomialCPF",
    "ProductCPF",
    "MixtureCPF",
    "PowerCPF",
    "EmpiricalCPF",
]

ARG_KINDS = ("similarity", "relative_distance", "distance")


class CPF:
    """Base class: a callable ``f`` mapping proximity values to ``[0, 1]``.

    Subclasses implement :meth:`_evaluate`; ``__call__`` handles array
    conversion and clips tiny numerical overshoots into ``[0, 1]``.

    Parameters
    ----------
    arg_kind:
        One of :data:`ARG_KINDS` — what the argument of ``f`` measures.
    description:
        Human-readable formula used in ``repr``.
    """

    def __init__(self, arg_kind: str, description: str = "") -> None:
        if arg_kind not in ARG_KINDS:
            raise ValueError(f"arg_kind must be one of {ARG_KINDS}, got {arg_kind!r}")
        self.arg_kind = arg_kind
        self.description = description or type(self).__name__

    def _evaluate(self, values: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, values: float | np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        out = np.asarray(self._evaluate(values), dtype=np.float64)
        if np.any(out < -1e-9) or np.any(out > 1 + 1e-9):
            bad = out[(out < -1e-9) | (out > 1 + 1e-9)]
            raise ValueError(
                f"CPF {self.description!r} produced values outside [0, 1]: "
                f"e.g. {bad.flat[0]!r} — check parameters/domain"
            )
        return np.clip(out, 0.0, 1.0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.description}, arg_kind={self.arg_kind})"


class LambdaCPF(CPF):
    """Wrap an arbitrary vectorized function as a CPF."""

    def __init__(self, func: Callable[[np.ndarray], np.ndarray], arg_kind: str, description: str = "lambda") -> None:
        super().__init__(arg_kind, description)
        self._func = func

    def _evaluate(self, values: np.ndarray) -> np.ndarray:
        return self._func(values)


class ConstantCPF(CPF):
    """``f = p`` regardless of distance — the CPF of the constant-collision
    family used as a building block in Theorem 5.2's sub-schemes."""

    def __init__(self, p: float, arg_kind: str = "relative_distance") -> None:
        super().__init__(arg_kind, f"constant {p}")
        self.p = check_probability(p, "p")

    def _evaluate(self, values: np.ndarray) -> np.ndarray:
        return np.full_like(values, self.p, dtype=np.float64)


class BitSamplingCPF(CPF):
    """``f(t) = 1 - t`` for relative Hamming distance ``t`` (Section 4.1,
    bit-sampling of Indyk–Motwani [32])."""

    def __init__(self) -> None:
        super().__init__("relative_distance", "1 - t")

    def _evaluate(self, values: np.ndarray) -> np.ndarray:
        return 1.0 - values


class AntiBitSamplingCPF(CPF):
    """``f(t) = t`` for relative Hamming distance ``t`` — the *anti*
    bit-sampling family ``(x -> x_i, y -> 1 - y_i)`` of Section 4.1."""

    def __init__(self) -> None:
        super().__init__("relative_distance", "t")

    def _evaluate(self, values: np.ndarray) -> np.ndarray:
        return values


class SimHashCPF(CPF):
    """``f(alpha) = 1 - arccos(alpha)/pi`` — Charikar's SimHash [17], the
    canonical *LSHable angular similarity function* of Section 5."""

    def __init__(self) -> None:
        super().__init__("similarity", "1 - arccos(alpha)/pi")

    def _evaluate(self, values: np.ndarray) -> np.ndarray:
        return 1.0 - np.arccos(np.clip(values, -1.0, 1.0)) / np.pi


class PolynomialCPF(CPF):
    """``f(t) = P(t) / scale`` for a polynomial given in increasing degree.

    Used both for Theorem 5.1 (``scale = 1`` after normalization, argument
    is the inner product) and Theorem 5.2 (argument is relative Hamming
    distance, ``scale = Delta``).
    """

    def __init__(self, coefficients: Sequence[float], arg_kind: str, scale: float = 1.0) -> None:
        coefficients = np.asarray(coefficients, dtype=np.float64).ravel()
        if coefficients.size == 0:
            raise ValueError("polynomial must have at least one coefficient")
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        super().__init__(
            arg_kind,
            f"P(t)/{scale:g} with coefficients {coefficients.tolist()}",
        )
        self.coefficients = coefficients
        self.scale = float(scale)

    def _evaluate(self, values: np.ndarray) -> np.ndarray:
        return np.polyval(self.coefficients[::-1], values) / self.scale


class ProductCPF(CPF):
    """``f = prod_i f_i`` — the CPF of concatenated families (Lemma 1.4(a))."""

    def __init__(self, cpfs: Sequence[CPF]) -> None:
        cpfs = list(cpfs)
        if not cpfs:
            raise ValueError("need at least one CPF")
        kinds = {c.arg_kind for c in cpfs}
        if len(kinds) != 1:
            raise ValueError(f"cannot multiply CPFs with mixed arg kinds {kinds}")
        super().__init__(cpfs[0].arg_kind, " * ".join(c.description for c in cpfs))
        self.cpfs = cpfs

    def _evaluate(self, values: np.ndarray) -> np.ndarray:
        out = np.ones_like(values, dtype=np.float64)
        for c in self.cpfs:
            out = out * c(values)
        return out


class MixtureCPF(CPF):
    """``f = sum_i p_i f_i`` — the CPF of mixture families (Lemma 1.4(b)).

    ``weights`` must be a probability vector over the component CPFs.
    """

    def __init__(self, cpfs: Sequence[CPF], weights: Sequence[float]) -> None:
        cpfs = list(cpfs)
        weights = np.asarray(weights, dtype=np.float64).ravel()
        if len(cpfs) != weights.size or not cpfs:
            raise ValueError("cpfs and weights must be equally sized and non-empty")
        if np.any(weights < 0) or not np.isclose(weights.sum(), 1.0, atol=1e-9):
            raise ValueError(f"weights must be a probability vector, got {weights}")
        kinds = {c.arg_kind for c in cpfs}
        if len(kinds) != 1:
            raise ValueError(f"cannot mix CPFs with mixed arg kinds {kinds}")
        super().__init__(
            cpfs[0].arg_kind,
            " + ".join(f"{w:g}*{c.description}" for w, c in zip(weights, cpfs)),
        )
        self.cpfs = cpfs
        self.weights = weights

    def _evaluate(self, values: np.ndarray) -> np.ndarray:
        out = np.zeros_like(values, dtype=np.float64)
        for w, c in zip(self.weights, self.cpfs):
            out = out + w * c(values)
        return out


class PowerCPF(CPF):
    """``f = base**k`` — the CPF of ``k``-fold powering (Lemma 1.4(a) applied
    to ``k`` copies of one family), the standard amplification step."""

    def __init__(self, base: CPF, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        super().__init__(base.arg_kind, f"({base.description})^{k}")
        self.base = base
        self.k = int(k)

    def _evaluate(self, values: np.ndarray) -> np.ndarray:
        return self.base(values) ** self.k


class EmpiricalCPF(CPF):
    """Piecewise-linear interpolation through estimated ``(x, f(x))`` points.

    Useful for constructions without a closed form (e.g. cross-polytope) and
    for feeding measured CPFs into index parameter selection.
    """

    def __init__(self, xs: Sequence[float], values: Sequence[float], arg_kind: str) -> None:
        xs = np.asarray(xs, dtype=np.float64).ravel()
        values = np.asarray(values, dtype=np.float64).ravel()
        if xs.size != values.size or xs.size < 2:
            raise ValueError("need >= 2 matching x/value points")
        if np.any(np.diff(xs) <= 0):
            raise ValueError("xs must be strictly increasing")
        for v in values:
            check_probability(float(v), "empirical CPF value")
        super().__init__(arg_kind, f"empirical through {xs.size} points")
        self.xs = xs
        self.values = values

    def _evaluate(self, values: np.ndarray) -> np.ndarray:
        return np.interp(values, self.xs, self.values)
