"""Core DSH framework: CPFs, families, combinators, estimation, rho-values."""

from repro.core.combinators import (
    ConcatenatedFamily,
    MixtureFamily,
    PoweredFamily,
    TransformedFamily,
    negate_queries,
)
from repro.core.cpf import (
    CPF,
    AntiBitSamplingCPF,
    BitSamplingCPF,
    ConstantCPF,
    EmpiricalCPF,
    LambdaCPF,
    MixtureCPF,
    PolynomialCPF,
    PowerCPF,
    ProductCPF,
    SimHashCPF,
)
from repro.core.estimate import (
    CollisionEstimate,
    estimate_collision_probability,
    estimate_cpf_curve,
    wilson_interval,
)
from repro.core.family import (
    DSHFamily,
    HashPair,
    SymmetricFamily,
    as_components,
    rows_equal,
    rows_to_keys,
)
from repro.core.rho import (
    check_decreasingly_sensitive,
    check_increasingly_sensitive,
    rho_from_probabilities,
    rho_minus,
    rho_plus,
    rho_star,
)
from repro.core.transforms import transform_family, transformed_cpf

__all__ = [
    "CPF",
    "LambdaCPF",
    "ConstantCPF",
    "BitSamplingCPF",
    "AntiBitSamplingCPF",
    "SimHashCPF",
    "PolynomialCPF",
    "ProductCPF",
    "MixtureCPF",
    "PowerCPF",
    "EmpiricalCPF",
    "DSHFamily",
    "SymmetricFamily",
    "HashPair",
    "as_components",
    "rows_equal",
    "rows_to_keys",
    "ConcatenatedFamily",
    "PoweredFamily",
    "MixtureFamily",
    "TransformedFamily",
    "negate_queries",
    "CollisionEstimate",
    "wilson_interval",
    "estimate_collision_probability",
    "estimate_cpf_curve",
    "rho_from_probabilities",
    "rho_plus",
    "rho_minus",
    "rho_star",
    "check_decreasingly_sensitive",
    "check_increasingly_sensitive",
    "transform_family",
    "transformed_cpf",
]
