"""Subsets of the Hamming cube: indicators, volumes, and exact correlated
pair probabilities.

These are the objects quantified over by the (reverse) small-set expansion
theorems (Theorems 3.2 and 3.9): sets ``A, B`` with volumes written as
``exp(-a^2/2)`` and the probability ``Pr[x in A, y in B]`` under random
alpha-correlation.  We compute that probability exactly through the noise
operator, which is what the verification benchmarks compare against the
theorem bounds.
"""

from __future__ import annotations

import numpy as np

from repro.booleancube.noise import noise_operator
from repro.booleancube.walsh import enumerate_cube

__all__ = [
    "volume",
    "volume_parameter",
    "hamming_ball",
    "subcube",
    "indicator_from_points",
    "correlated_pair_probability",
]


def volume(indicator: np.ndarray) -> float:
    """Volume ``|A| / 2^d`` of a set given by its 0/1 indicator vector."""
    indicator = np.asarray(indicator, dtype=np.float64)
    return float(np.mean(indicator))


def volume_parameter(indicator: np.ndarray) -> float:
    """The ``a >= 0`` with ``|A|/2^d = exp(-a^2/2)`` (Theorem 3.2's notation).

    Raises ``ValueError`` for empty sets (volume 0 has no finite parameter).
    """
    v = volume(indicator)
    if v <= 0.0:
        raise ValueError("empty set has no finite volume parameter")
    if v > 1.0:
        raise ValueError(f"indicator volume {v} exceeds 1")
    return float(np.sqrt(max(0.0, -2.0 * np.log(v))))


def hamming_ball(d: int, radius: int, center: np.ndarray | None = None) -> np.ndarray:
    """Indicator of the Hamming ball of the given ``radius``.

    Parameters
    ----------
    d:
        Cube dimension.
    radius:
        Inclusive radius in ``[0, d]``.
    center:
        Center point as a length-``d`` 0/1 array; defaults to the origin.
    """
    if not 0 <= radius <= d:
        raise ValueError(f"radius must lie in [0, {d}], got {radius}")
    cube = enumerate_cube(d)
    if center is None:
        center = np.zeros(d, dtype=np.int8)
    center = np.asarray(center).astype(np.int8)
    if center.shape != (d,):
        raise ValueError(f"center must have shape ({d},), got {center.shape}")
    dist = np.count_nonzero(cube != center, axis=1)
    return (dist <= radius).astype(np.float64)


def subcube(d: int, fixed: dict[int, int]) -> np.ndarray:
    """Indicator of the subcube with coordinates in ``fixed`` pinned.

    Parameters
    ----------
    d:
        Cube dimension.
    fixed:
        Mapping ``coordinate -> bit`` of pinned coordinates; volume is
        ``2^{-|fixed|}``.
    """
    cube = enumerate_cube(d)
    ind = np.ones(2**d, dtype=np.float64)
    for coord, bit in fixed.items():
        if not 0 <= coord < d:
            raise ValueError(f"coordinate {coord} out of range for d={d}")
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit}")
        ind *= cube[:, coord] == bit
    return ind


def indicator_from_points(d: int, points: np.ndarray) -> np.ndarray:
    """Indicator of an explicit point set given as an ``(m, d)`` 0/1 array."""
    points = np.atleast_2d(np.asarray(points)).astype(np.int64)
    if points.shape[1] != d:
        raise ValueError(f"points must have {d} columns, got {points.shape[1]}")
    idx = points @ (1 << np.arange(d, dtype=np.int64))
    ind = np.zeros(2**d, dtype=np.float64)
    ind[idx] = 1.0
    return ind


def correlated_pair_probability(
    a_indicator: np.ndarray, b_indicator: np.ndarray, alpha: float
) -> float:
    """Exact ``Pr_{(x,y) alpha-corr}[x in A, y in B]``.

    Computed as ``E_x[1_A(x) (T_alpha 1_B)(x)]`` — the quantity bounded from
    below by the reverse small-set expansion theorem (Theorem 3.2) and from
    above by the generalized one (Theorem 3.9).
    """
    a_indicator = np.asarray(a_indicator, dtype=np.float64)
    b_indicator = np.asarray(b_indicator, dtype=np.float64)
    if a_indicator.shape != b_indicator.shape:
        raise ValueError(
            f"shape mismatch: {a_indicator.shape} vs {b_indicator.shape}"
        )
    smoothed = noise_operator(b_indicator, alpha)
    return float(np.mean(a_indicator * smoothed))
