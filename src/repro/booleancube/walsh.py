"""Fast Walsh-Hadamard transform and Fourier analysis on ``{0,1}^d``.

Conventions (following O'Donnell, *Analysis of Boolean Functions*):

* points ``x`` in ``{0,1}^d`` are indexed by integers whose bit ``i`` is the
  coordinate ``x_i`` (little-endian),
* characters are ``chi_S(x) = (-1)^{<S, x>}`` for ``S`` ranging over subsets
  encoded the same way,
* the Fourier coefficient is ``f_hat(S) = E_x[f(x) chi_S(x)]`` so that
  ``f(x) = sum_S f_hat(S) chi_S(x)``.

All transforms are dense and cost ``O(d 2^d)`` time / ``O(2^d)`` memory —
exactly what the exact lower-bound experiments need for ``d <= ~20``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "enumerate_cube",
    "popcounts",
    "walsh_hadamard_transform",
    "fourier_coefficients",
    "inverse_fourier",
]


def enumerate_cube(d: int) -> np.ndarray:
    """All points of ``{0,1}^d`` as a ``(2**d, d)`` int8 array.

    Row ``i`` contains the little-endian bits of ``i``, so row indices and
    the transform's point indices agree.
    """
    if not 0 <= d <= 26:
        raise ValueError(f"d must lie in [0, 26] for dense enumeration, got {d}")
    idx = np.arange(2**d, dtype=np.int64)
    return ((idx[:, None] >> np.arange(d)) & 1).astype(np.int8)


def popcounts(d: int) -> np.ndarray:
    """Popcount (subset size ``|S|``) of every index ``0 .. 2**d - 1``."""
    if not 0 <= d <= 26:
        raise ValueError(f"d must lie in [0, 26], got {d}")
    counts = np.zeros(2**d, dtype=np.int64)
    for i in range(d):
        counts += (np.arange(2**d) >> i) & 1
    return counts


def walsh_hadamard_transform(values: np.ndarray) -> np.ndarray:
    """Unnormalized Walsh-Hadamard transform along the last axis.

    ``out[S] = sum_x values[x] * (-1)^{<S, x>}``.  The input length must be a
    power of two.  The transform is an involution up to the factor ``2**d``.
    """
    values = np.asarray(values, dtype=np.float64).copy()
    n = values.shape[-1]
    if n & (n - 1) != 0 or n == 0:
        raise ValueError(f"length must be a power of two, got {n}")
    h = 1
    while h < n:
        shape = values.shape[:-1] + (n // (2 * h), 2, h)
        v = values.reshape(shape)
        a = v[..., 0, :] + v[..., 1, :]
        b = v[..., 0, :] - v[..., 1, :]
        v[..., 0, :] = a
        v[..., 1, :] = b
        h *= 2
    return values


def fourier_coefficients(values: np.ndarray) -> np.ndarray:
    """Fourier coefficients ``f_hat(S) = E_x[f(x) chi_S(x)]`` of ``f``.

    ``values[x]`` is ``f`` on the cube in index order (see
    :func:`enumerate_cube`).
    """
    values = np.asarray(values, dtype=np.float64)
    return walsh_hadamard_transform(values) / values.shape[-1]


def inverse_fourier(coefficients: np.ndarray) -> np.ndarray:
    """Reconstruct point values from Fourier coefficients (inverse of
    :func:`fourier_coefficients`)."""
    coefficients = np.asarray(coefficients, dtype=np.float64)
    return walsh_hadamard_transform(coefficients)
