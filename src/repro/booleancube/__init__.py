"""Analysis-of-Boolean-functions substrate for the lower-bound machinery.

Section 3 of the paper works on the Hamming cube with randomly
alpha-correlated points (Definition 3.1) and the noise operator ``T_alpha``
(via O'Donnell's small-set expansion theorems).  This package implements the
objects exactly for moderate ``d``:

* :mod:`repro.booleancube.walsh` — fast Walsh-Hadamard transform and Fourier
  coefficients,
* :mod:`repro.booleancube.noise` — the noise operator, noise stability, and
  *exact* probabilistic CPFs ``f_hat(alpha)`` of arbitrary hash-function
  pairs,
* :mod:`repro.booleancube.sets` — indicators, volumes, Hamming balls and
  subcubes, and exact correlated-pair probabilities ``Pr[x in A, y in B]``.
"""

from repro.booleancube import noise, sets, walsh

__all__ = ["walsh", "noise", "sets"]
