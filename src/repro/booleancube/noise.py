"""The noise operator ``T_alpha`` and exact probabilistic CPFs.

For randomly alpha-correlated ``(x, y)`` (Definition 3.1) the conditional
distribution of ``y`` given ``x`` is the binary symmetric channel with flip
probability ``(1 - alpha)/2``; the induced averaging operator is

    (T_alpha f)(x) = E_{y ~ alpha-correlated to x}[f(y)],

which acts diagonally in the Fourier basis: ``T_alpha f_hat(S) =
alpha^{|S|} f_hat(S)``.  This lets us compute the *exact* probabilistic CPF
(Definition 3.3)

    f_hat(alpha) = Pr_{(h,g), (x,y)}[h(x) = g(y)]

of any concrete pair of hash functions in ``O(L d 2^d)`` time where ``L`` is
the number of shared hash values — the workhorse behind the empirical
verification of the Theorem 1.3 lower bound.
"""

from __future__ import annotations

import numpy as np

from repro.booleancube.walsh import (
    fourier_coefficients,
    inverse_fourier,
    popcounts,
)

__all__ = [
    "noise_operator",
    "noise_stability",
    "correlated_collision_probability",
    "exact_probabilistic_cpf",
]


def noise_operator(values: np.ndarray, alpha: float) -> np.ndarray:
    """Apply ``T_alpha`` to a function given by its point values.

    Parameters
    ----------
    values:
        ``(2**d,)`` array of ``f`` over the cube in index order.
    alpha:
        Correlation in ``[-1, 1]``.

    Returns
    -------
    numpy.ndarray
        Point values of ``T_alpha f``.
    """
    values = np.asarray(values, dtype=np.float64)
    d = int(np.log2(values.shape[-1]))
    coeffs = fourier_coefficients(values)
    coeffs = coeffs * np.power(float(alpha), popcounts(d))
    return inverse_fourier(coeffs)


def noise_stability(f: np.ndarray, g: np.ndarray, alpha: float) -> float:
    """``E_{(x,y) alpha-corr}[f(x) g(y)] = sum_S alpha^{|S|} f_hat(S) g_hat(S)``."""
    f = np.asarray(f, dtype=np.float64)
    g = np.asarray(g, dtype=np.float64)
    if f.shape != g.shape:
        raise ValueError(f"shape mismatch: {f.shape} vs {g.shape}")
    d = int(np.log2(f.shape[-1]))
    fc = fourier_coefficients(f)
    gc = fourier_coefficients(g)
    return float(np.sum(np.power(float(alpha), popcounts(d)) * fc * gc))


def correlated_collision_probability(
    h_labels: np.ndarray, g_labels: np.ndarray, alpha: float
) -> float:
    """Exact ``Pr_{(x,y) alpha-corr}[h(x) = g(y)]`` for one function pair.

    Parameters
    ----------
    h_labels, g_labels:
        ``(2**d,)`` integer label arrays: the hash values of every cube
        point under ``h`` and ``g`` (in :func:`enumerate_cube` order).
    alpha:
        Correlation in ``[-1, 1]``.

    Notes
    -----
    Computed as ``sum_i <1_{h=i}, T_alpha 1_{g=i}> / 2^d`` where the sum
    ranges over labels occurring on both sides.
    """
    h_labels = np.asarray(h_labels)
    g_labels = np.asarray(g_labels)
    if h_labels.shape != g_labels.shape:
        raise ValueError(f"shape mismatch: {h_labels.shape} vs {g_labels.shape}")
    n = h_labels.shape[0]
    shared = np.intersect1d(np.unique(h_labels), np.unique(g_labels))
    total = 0.0
    for label in shared:
        smoothed = noise_operator((g_labels == label).astype(np.float64), alpha)
        total += float(np.sum(smoothed[h_labels == label])) / n
    return total


def exact_probabilistic_cpf(
    label_pairs: list[tuple[np.ndarray, np.ndarray]], alpha: float
) -> float:
    """Exact probabilistic CPF ``f_hat(alpha)`` averaged over sampled pairs.

    Parameters
    ----------
    label_pairs:
        List of ``(h_labels, g_labels)`` arrays over the full cube — e.g.
        produced by evaluating sampled :class:`~repro.core.family.HashPair`
        objects on :func:`~repro.booleancube.walsh.enumerate_cube`.
    alpha:
        Correlation in ``[-1, 1]``.

    Returns
    -------
    float
        The Monte-Carlo-free average of
        :func:`correlated_collision_probability` over the supplied pairs
        (exact given the pairs; the only randomness left is which pairs were
        sampled from the family).
    """
    if not label_pairs:
        raise ValueError("label_pairs must be non-empty")
    return float(
        np.mean(
            [correlated_collision_probability(h, g, alpha) for h, g in label_pairs]
        )
    )
