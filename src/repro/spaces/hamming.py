"""The Hamming cube ``{0,1}^d``.

The paper measures Hamming proximity two ways and we support both:

* **relative Hamming distance** ``t = ||x - y||_1 / d`` in ``[0, 1]``
  (used by bit-sampling CPFs, Theorem 5.2), and
* **Hamming similarity** ``simH(x, y) = 1 - 2 ||x - y||_1 / d`` in
  ``[-1, 1]`` (used by the lower bounds in Section 3; it equals the inner
  product of the ``±1`` encodings of ``x`` and ``y``).

``alpha_correlated_pairs`` implements Definition 3.1: ``x`` is uniform and
``y`` agrees with ``x`` coordinate-wise with probability ``(1 + alpha)/2``.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_in_closed_interval

__all__ = [
    "hamming_distance",
    "relative_distance",
    "similarity",
    "similarity_to_relative_distance",
    "relative_distance_to_similarity",
    "random_points",
    "alpha_correlated_pairs",
    "pairs_at_distance",
    "flip_bits",
    "to_signs",
    "from_signs",
]


def hamming_distance(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Absolute Hamming distance between rows of ``x`` and ``y``.

    Parameters
    ----------
    x, y:
        Binary arrays of identical shape ``(n, d)`` or ``(d,)``.

    Returns
    -------
    numpy.ndarray
        Integer distances, shape ``(n,)`` (scalar arrays for 1-D input).
    """
    x = np.atleast_2d(np.asarray(x))
    y = np.atleast_2d(np.asarray(y))
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    return np.count_nonzero(x != y, axis=1)


def relative_distance(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Relative Hamming distance ``||x - y||_1 / d`` in ``[0, 1]``."""
    x = np.atleast_2d(np.asarray(x))
    return hamming_distance(x, y) / x.shape[1]


def similarity(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Hamming similarity ``simH(x, y) = 1 - 2 ||x - y||_1 / d`` (Section 3)."""
    return 1.0 - 2.0 * relative_distance(x, y)


def similarity_to_relative_distance(alpha: float | np.ndarray) -> float | np.ndarray:
    """Convert similarity ``alpha`` in ``[-1, 1]`` to relative distance in ``[0, 1]``."""
    return (1.0 - np.asarray(alpha, dtype=np.float64)) / 2.0


def relative_distance_to_similarity(t: float | np.ndarray) -> float | np.ndarray:
    """Convert relative distance ``t`` in ``[0, 1]`` to similarity in ``[-1, 1]``."""
    return 1.0 - 2.0 * np.asarray(t, dtype=np.float64)


def random_points(
    n: int, d: int, rng: int | np.random.Generator | None = None
) -> np.ndarray:
    """Sample ``n`` uniform points from ``{0,1}^d`` as an ``(n, d)`` int8 array."""
    rng = ensure_rng(rng)
    return rng.integers(0, 2, size=(n, d), dtype=np.int8)


def alpha_correlated_pairs(
    n: int,
    d: int,
    alpha: float,
    rng: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``n`` randomly ``alpha``-correlated pairs (Definition 3.1).

    ``x`` is uniform on ``{0,1}^d``; independently per coordinate,
    ``y_i = x_i`` with probability ``(1 + alpha)/2`` and ``1 - x_i``
    otherwise.  ``E[simH(x, y)] = alpha``.

    Parameters
    ----------
    n, d:
        Number of pairs and dimension.
    alpha:
        Correlation in ``[-1, 1]``.
    rng:
        Seed or generator.

    Returns
    -------
    (numpy.ndarray, numpy.ndarray)
        Two ``(n, d)`` int8 arrays ``(x, y)``.
    """
    check_in_closed_interval(alpha, -1.0, 1.0, "alpha")
    rng = ensure_rng(rng)
    x = random_points(n, d, rng)
    flips = rng.random(size=(n, d)) >= (1.0 + alpha) / 2.0
    y = np.where(flips, 1 - x, x).astype(np.int8)
    return x, y


def pairs_at_distance(
    n: int,
    d: int,
    r: int,
    rng: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``n`` pairs at *exact* Hamming distance ``r``.

    ``x`` is uniform and ``y`` flips a uniformly random ``r``-subset of
    coordinates.  Exact-distance pairs give noise-free CPF estimates at a
    target distance (unlike ``alpha_correlated_pairs`` whose distance is
    binomially distributed).
    """
    if not 0 <= r <= d:
        raise ValueError(f"r must lie in [0, {d}], got {r}")
    rng = ensure_rng(rng)
    x = random_points(n, d, rng)
    y = x.copy()
    for i in range(n):
        idx = rng.choice(d, size=r, replace=False)
        y[i, idx] = 1 - y[i, idx]
    return x, y


def flip_bits(
    x: np.ndarray, r: int, rng: int | np.random.Generator | None = None
) -> np.ndarray:
    """Return a copy of each row of ``x`` with a random ``r``-subset of bits flipped."""
    x = np.atleast_2d(np.asarray(x))
    n, d = x.shape
    if not 0 <= r <= d:
        raise ValueError(f"r must lie in [0, {d}], got {r}")
    rng = ensure_rng(rng)
    y = x.copy()
    for i in range(n):
        idx = rng.choice(d, size=r, replace=False)
        y[i, idx] = 1 - y[i, idx]
    return y


def to_signs(x: np.ndarray) -> np.ndarray:
    """Map bits ``{0,1}`` to signs ``{+1,-1}`` (``0 -> +1``, ``1 -> -1``).

    Under this encoding ``<to_signs(x), to_signs(y)> / d = simH(x, y)``,
    which is the embedding the paper uses to transfer sphere results to the
    Hamming cube.
    """
    x = np.asarray(x)
    return (1 - 2 * x).astype(np.float64)


def from_signs(s: np.ndarray) -> np.ndarray:
    """Inverse of :func:`to_signs`: ``+1 -> 0``, ``-1 -> 1``."""
    s = np.asarray(s)
    return ((1 - np.sign(s)) // 2).astype(np.int8)
