"""Euclidean space ``R^d``.

Used by the shifted random-projection DSH of Section 4.2 (equation (2)),
whose CPF depends only on ``||x - y||_2``.  Provides distance helpers and
samplers of point pairs at exact distance.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive

__all__ = [
    "euclidean_distance",
    "random_points",
    "pairs_at_distance",
    "translate_at_distance",
]


def euclidean_distance(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Row-wise Euclidean distances between ``x`` and ``y`` of identical shape."""
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    y = np.atleast_2d(np.asarray(y, dtype=np.float64))
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    return np.linalg.norm(x - y, axis=1)


def random_points(
    n: int,
    d: int,
    rng: int | np.random.Generator | None = None,
    scale: float = 1.0,
) -> np.ndarray:
    """Sample ``n`` points from an isotropic Gaussian with standard deviation ``scale``."""
    check_positive(scale, "scale")
    rng = ensure_rng(rng)
    return scale * rng.standard_normal(size=(n, d))


def pairs_at_distance(
    n: int,
    d: int,
    delta: float,
    rng: int | np.random.Generator | None = None,
    scale: float = 1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``n`` pairs at *exact* Euclidean distance ``delta``.

    ``x`` is Gaussian and ``y = x + delta u`` for a uniform unit direction
    ``u``.  The CPF of the equation-(2) family depends only on ``delta``, so
    the base-point distribution is irrelevant for estimation; the Gaussian
    cloud simply keeps examples realistic.
    """
    if delta < 0:
        raise ValueError(f"delta must be non-negative, got {delta}")
    rng = ensure_rng(rng)
    x = random_points(n, d, rng, scale=scale)
    y = translate_at_distance(x, delta, rng)
    return x, y


def translate_at_distance(
    x: np.ndarray, delta: float, rng: int | np.random.Generator | None = None
) -> np.ndarray:
    """Translate each row of ``x`` by ``delta`` in an independent uniform direction."""
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    if delta < 0:
        raise ValueError(f"delta must be non-negative, got {delta}")
    rng = ensure_rng(rng)
    g = rng.standard_normal(size=x.shape)
    norms = np.linalg.norm(g, axis=1, keepdims=True)
    return x + delta * g / norms
