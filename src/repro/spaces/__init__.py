"""Distance spaces used by the paper: Hamming cube, unit sphere, Euclidean.

Each module provides the metric/similarity of the space, uniform sampling,
and generators of point pairs at controlled distance — the raw material for
estimating collision probability functions.
"""

from repro.spaces import embeddings, euclidean, hamming, sphere, stable_features

__all__ = ["hamming", "sphere", "euclidean", "embeddings", "stable_features"]
