"""The unit sphere ``S^{d-1}`` with inner-product similarity.

Section 2 of the paper expresses all sphere CPFs as functions of the inner
product ``alpha = <x, y>`` in ``(-1, 1)``; on the unit sphere this is in 1-1
correspondence with the angle (``theta = arccos(alpha)``) and the Euclidean
distance (``tau = sqrt(2 (1 - alpha))``, paper footnote 1).  This module
provides those conversions and samplers for uniformly random points and for
pairs with an exact prescribed inner product.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_in_closed_interval

__all__ = [
    "inner_product",
    "angle_to_inner_product",
    "inner_product_to_angle",
    "inner_product_to_euclidean",
    "euclidean_to_inner_product",
    "normalize",
    "random_points",
    "pairs_at_inner_product",
    "orthogonal_to",
    "random_rotation",
]


def inner_product(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Row-wise inner products between ``x`` and ``y`` of identical shape."""
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    y = np.atleast_2d(np.asarray(y, dtype=np.float64))
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    return np.einsum("ij,ij->i", x, y)


def angle_to_inner_product(theta: float | np.ndarray) -> float | np.ndarray:
    """Convert an angle in radians to the corresponding inner product."""
    return np.cos(theta)


def inner_product_to_angle(alpha: float | np.ndarray) -> float | np.ndarray:
    """Convert an inner product in ``[-1, 1]`` to the angle in radians."""
    return np.arccos(np.clip(alpha, -1.0, 1.0))


def inner_product_to_euclidean(alpha: float | np.ndarray) -> float | np.ndarray:
    """Euclidean distance between unit vectors with inner product ``alpha``.

    ``tau = sqrt(2 (1 - alpha))`` (paper footnote 1).
    """
    return np.sqrt(np.maximum(2.0 * (1.0 - np.asarray(alpha, dtype=np.float64)), 0.0))


def euclidean_to_inner_product(tau: float | np.ndarray) -> float | np.ndarray:
    """Inverse of :func:`inner_product_to_euclidean`: ``alpha = 1 - tau^2 / 2``."""
    tau = np.asarray(tau, dtype=np.float64)
    return 1.0 - tau**2 / 2.0


def normalize(points: np.ndarray) -> np.ndarray:
    """Project nonzero rows of ``points`` onto the unit sphere."""
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    norms = np.linalg.norm(points, axis=1, keepdims=True)
    if np.any(norms == 0):
        raise ValueError("cannot normalize a zero vector")
    return points / norms


def random_points(
    n: int, d: int, rng: int | np.random.Generator | None = None
) -> np.ndarray:
    """Sample ``n`` points uniformly from ``S^{d-1}`` (Gaussian normalization)."""
    if d < 1:
        raise ValueError(f"d must be >= 1, got {d}")
    rng = ensure_rng(rng)
    g = rng.standard_normal(size=(n, d))
    return normalize(g)


def pairs_at_inner_product(
    n: int,
    d: int,
    alpha: float,
    rng: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``n`` pairs of unit vectors with *exact* inner product ``alpha``.

    ``x`` is uniform on the sphere and ``y = alpha x + sqrt(1 - alpha^2) u``
    where ``u`` is a uniform unit vector in the orthogonal complement of
    ``x``.  The construction is exact up to floating point and matches the
    bivariate-Gaussian correlation picture used throughout Appendix A.

    Parameters
    ----------
    n, d:
        Number of pairs and ambient dimension (``d >= 2``).
    alpha:
        Target inner product in ``[-1, 1]``.
    rng:
        Seed or generator.
    """
    check_in_closed_interval(alpha, -1.0, 1.0, "alpha")
    if d < 2:
        raise ValueError(f"d must be >= 2 to prescribe an inner product, got {d}")
    rng = ensure_rng(rng)
    x = random_points(n, d, rng)
    u = orthogonal_to(x, rng)
    y = alpha * x + np.sqrt(max(1.0 - alpha**2, 0.0)) * u
    return x, normalize(y)


def orthogonal_to(
    x: np.ndarray, rng: int | np.random.Generator | None = None
) -> np.ndarray:
    """For each unit row of ``x``, sample a uniform unit vector orthogonal to it."""
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    rng = ensure_rng(rng)
    g = rng.standard_normal(size=x.shape)
    proj = np.einsum("ij,ij->i", g, x)[:, None] * x
    return normalize(g - proj)


def random_rotation(d: int, rng: int | np.random.Generator | None = None) -> np.ndarray:
    """Sample a Haar-random rotation matrix in ``O(d)`` via QR decomposition.

    The sign correction makes the distribution exactly Haar (see Mezzadri,
    "How to generate random matrices from the classical compact groups").
    """
    rng = ensure_rng(rng)
    g = rng.standard_normal(size=(d, d))
    q, r = np.linalg.qr(g)
    return q * np.sign(np.diag(r))
