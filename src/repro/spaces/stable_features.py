"""Random Fourier features from s-stable distributions (Section 2 remark).

The paper notes that results on the unit sphere extend to ``l_s`` spaces
for ``0 < s <= 2`` "through Rahimi and Recht's embedding version of
Bochner's Theorem applied to the characteristic functions of s-stable
distributions as used in [21]".  This module implements that transfer:

    phi(x) = sqrt(2/m) * ( cos(<w_1, x>/scale + b_1), ...,
                           cos(<w_m, x>/scale + b_m) ),

with ``w_i`` drawn coordinate-wise from an s-stable distribution and
``b_i ~ U[0, 2 pi)``.  Then ``E[<phi(x), phi(y)>]`` equals the
characteristic function of the stable law at ``||x - y||_s / scale``:

* ``s = 2`` (Gaussian):   ``kappa(delta) = exp(-delta^2 / (2 scale^2))``,
* ``s = 1`` (Cauchy):     ``kappa(delta) = exp(-delta / scale)``,

and ``||phi(x)||`` concentrates around 1.  Composing any sphere DSH family
with ``phi`` therefore turns a similarity CPF ``f(alpha)`` into the
``l_s``-distance CPF ``f(kappa(delta))`` — with *exponentially* decaying
kernels, unlike the ``1/delta`` tails of bucket-based families.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.combinators import TransformedFamily
from repro.core.cpf import CPF, LambdaCPF
from repro.core.family import DSHFamily
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive

__all__ = ["StableRandomFeatures", "lift_sphere_family"]


def _sample_stable(
    s: float, size: tuple[int, ...], rng: np.random.Generator
) -> np.ndarray:
    """Sample standard symmetric s-stable variates.

    Uses the exact special cases for ``s = 2`` (normal) and ``s = 1``
    (Cauchy) and the Chambers–Mallows–Stuck construction otherwise.
    """
    if abs(s - 2.0) < 1e-12:
        # Variance 2 would give char. func. exp(-t^2); standard normal has
        # exp(-t^2/2) which is the convention we document.
        return rng.standard_normal(size)
    if abs(s - 1.0) < 1e-12:
        return rng.standard_cauchy(size)
    u = rng.uniform(-np.pi / 2, np.pi / 2, size)
    w = rng.exponential(1.0, size)
    return (
        np.sin(s * u)
        / np.cos(u) ** (1.0 / s)
        * (np.cos(u - s * u) / w) ** ((1.0 - s) / s)
    )


class StableRandomFeatures:
    """The Rahimi–Recht random-feature map for an ``l_s`` metric.

    Parameters
    ----------
    d:
        Input dimension.
    m:
        Number of random features (embedding dimension); kernel error is
        ``O(1/sqrt(m))``.
    s:
        Stability parameter in ``(0, 2]`` (``2`` = Euclidean, ``1`` = l1).
    scale:
        Kernel bandwidth; distances are measured in units of ``scale``.
    rng:
        Seed or generator for the feature randomness.
    """

    def __init__(
        self,
        d: int,
        m: int,
        s: float = 2.0,
        scale: float = 1.0,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        if d < 1 or m < 1:
            raise ValueError(f"d and m must be >= 1, got d={d}, m={m}")
        if not 0.0 < s <= 2.0:
            raise ValueError(f"s must lie in (0, 2], got {s}")
        check_positive(scale, "scale")
        self.d = int(d)
        self.m = int(m)
        self.s = float(s)
        self.scale = float(scale)
        rng = ensure_rng(rng)
        self._w = _sample_stable(s, (self.m, self.d), rng) / self.scale
        self._b = rng.uniform(0.0, 2.0 * np.pi, self.m)

    def __call__(self, points: np.ndarray) -> np.ndarray:
        """Embed the rows of ``points`` into (approximately) ``S^{m-1}``."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[1] != self.d:
            raise ValueError(f"expected dimension {self.d}, got {points.shape[1]}")
        return np.sqrt(2.0 / self.m) * np.cos(points @ self._w.T + self._b)

    def kernel(self, delta: float | np.ndarray) -> np.ndarray:
        """The similarity ``kappa(delta)`` induced at ``l_s`` distance
        ``delta``: the stable law's characteristic function at
        ``delta/scale``."""
        t = np.asarray(delta, dtype=np.float64) / self.scale
        if np.any(t < 0):
            raise ValueError("distances must be non-negative")
        if abs(self.s - 2.0) < 1e-12:
            out = np.exp(-(t**2) / 2.0)
        else:
            out = np.exp(-np.abs(t) ** self.s)
        return out if out.ndim else float(out)


def lift_sphere_family(
    family: DSHFamily,
    features: StableRandomFeatures,
    similarity_cpf: CPF | None = None,
) -> TransformedFamily:
    """Compose a sphere DSH family with a stable feature map.

    The result hashes ``l_s``-space points; if the base family's CPF
    ``f(alpha)`` is known, the lifted family's *approximate* CPF is
    ``delta -> f(kappa(delta))`` (exact up to the ``O(1/sqrt(m))`` kernel
    approximation and the slight norm jitter of the features).

    Parameters
    ----------
    family:
        A DSH family over ``S^{m-1}`` with a similarity-kind CPF (SimHash,
        filters, cross-polytope, annulus, ...).
    features:
        The feature map; its ``m`` must match the family's dimension.
    similarity_cpf:
        Override for the base CPF (defaults to ``family.cpf``).
    """
    base_cpf = similarity_cpf if similarity_cpf is not None else family.cpf
    lifted_cpf = None
    if base_cpf is not None:
        if base_cpf.arg_kind != "similarity":
            raise ValueError("the base family CPF must take a similarity argument")

        def compose(delta: np.ndarray) -> np.ndarray:
            return base_cpf(np.asarray(features.kernel(delta)))

        lifted_cpf = LambdaCPF(
            compose, "distance", f"f(kappa_s(delta)), s={features.s:g}"
        )
    return TransformedFamily(
        family, data_map=features, query_map=features, cpf=lifted_cpf
    )
