"""Embeddings between spaces, and the asymmetric polynomial embeddings of
Valiant used by Theorem 5.1.

Three pieces:

* :func:`hamming_to_sphere` — the standard ``{0,1}^d -> S^{d-1}`` embedding
  (``+-1`` signs scaled by ``1/sqrt(d)``) under which Hamming similarity
  ``simH`` becomes the inner product.  Section 3 uses it to transfer the
  Hamming lower bounds to the sphere.
* :class:`ValiantEmbedding` — the pair of maps ``phi1, phi2 : R^d -> R^D``
  with ``<phi1(x), phi2(y)> = P(<x, y>)`` for a polynomial ``P`` with
  ``sum |a_i| <= 1`` (Appendix C.2, after Valiant [51]).  The asymmetry of
  the pair is what absorbs negative coefficients.
* :class:`TensorSketchEmbedding` — the near-linear-time approximation of the
  same maps via CountSketch + FFT convolution (the "kernel approximation
  methods [42]" remark in Section 5), satisfying
  ``<phi1(x), phi2(y)> = P(<x, y>) +- eps`` with high probability.
"""

from __future__ import annotations

import numpy as np

from repro.spaces.hamming import to_signs
from repro.utils.rng import ensure_rng

__all__ = [
    "hamming_to_sphere",
    "tensor_power",
    "ValiantEmbedding",
    "TensorSketchEmbedding",
]

_MAX_EXPLICIT_DIM = 2_000_000


def hamming_to_sphere(x: np.ndarray) -> np.ndarray:
    """Embed ``{0,1}^d`` into ``S^{d-1}`` so that ``simH`` becomes inner product.

    ``x -> (1 - 2x) / sqrt(d)``; then ``<emb(x), emb(y)> = simH(x, y)``.
    """
    x = np.atleast_2d(np.asarray(x))
    d = x.shape[1]
    return to_signs(x) / np.sqrt(d)


def tensor_power(x: np.ndarray, order: int) -> np.ndarray:
    """Row-wise ``order``-fold tensor power, flattened to ``(n, d**order)``.

    ``tensor_power(x, k)[i]`` is the flattening of ``x_i (x) ... (x) x_i``
    (``k`` factors), so ``<tensor_power(x,k)[i], tensor_power(y,k)[j]> =
    <x_i, y_j>**k``.  ``order = 0`` gives the all-ones ``(n, 1)`` array.
    """
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    n, d = x.shape
    if order < 0:
        raise ValueError(f"order must be non-negative, got {order}")
    if order == 0:
        return np.ones((n, 1))
    if d**order > _MAX_EXPLICIT_DIM:
        raise ValueError(
            f"explicit tensor power dimension d**order = {d**order} exceeds "
            f"{_MAX_EXPLICIT_DIM}; use TensorSketchEmbedding instead"
        )
    out = x
    for _ in range(order - 1):
        out = np.einsum("ni,nj->nij", out, x).reshape(n, -1)
    return out


def _check_coefficients(coefficients: np.ndarray) -> np.ndarray:
    coefficients = np.asarray(coefficients, dtype=np.float64).ravel()
    if coefficients.size == 0:
        raise ValueError("polynomial must have at least one coefficient")
    total = float(np.sum(np.abs(coefficients)))
    if total > 1.0 + 1e-12:
        raise ValueError(
            f"Theorem 5.1 requires sum |a_i| <= 1, got {total:.6f}; rescale P"
        )
    return coefficients


class ValiantEmbedding:
    """Exact asymmetric embedding pair for a polynomial ``P`` (Theorem 5.1).

    For ``P(t) = sum_{i=0}^k a_i t^i`` with ``sum |a_i| <= 1`` the maps
    satisfy, for unit vectors ``x, y``:

    * ``<embed_data(x), embed_query(y)> = P(<x, y>)``,
    * ``||embed_data(x)|| = ||embed_query(y)|| = 1`` (two padding
      coordinates absorb any slack ``1 - sum |a_i|`` without touching the
      inner product).

    Parameters
    ----------
    coefficients:
        ``(k+1,)`` array ``[a_0, a_1, ..., a_k]`` in increasing degree.
    d:
        Input dimension; the output dimension is ``2 + sum_i d**i``.

    Notes
    -----
    Data points go through ``phi1`` (:meth:`embed_data`) and query points
    through ``phi2`` (:meth:`embed_query`); the sign of each ``a_i`` lives
    only on the query side, which is exactly the asymmetry the construction
    exploits.
    """

    def __init__(self, coefficients: np.ndarray, d: int) -> None:
        self.coefficients = _check_coefficients(coefficients)
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        self.d = int(d)
        self.degree = self.coefficients.size - 1
        if d**self.degree > _MAX_EXPLICIT_DIM:
            raise ValueError(
                f"d**degree = {d**self.degree} too large for the explicit "
                "embedding; use TensorSketchEmbedding"
            )
        self._slack = max(0.0, 1.0 - float(np.sum(np.abs(self.coefficients))))

    @property
    def output_dim(self) -> int:
        """Dimension of the embedded vectors (including the two padding slots)."""
        return 2 + sum(self.d**i for i in range(self.degree + 1))

    def _embed(self, points: np.ndarray, query_side: bool) -> np.ndarray:
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[1] != self.d:
            raise ValueError(f"expected dimension {self.d}, got {points.shape[1]}")
        n = points.shape[0]
        blocks = []
        for i, a in enumerate(self.coefficients):
            root = np.sqrt(abs(a))
            weight = np.sign(a) * root if query_side else root
            blocks.append(weight * tensor_power(points, i))
        pad = np.sqrt(self._slack)
        if query_side:
            blocks.append(np.zeros((n, 1)))
            blocks.append(np.full((n, 1), pad))
        else:
            blocks.append(np.full((n, 1), pad))
            blocks.append(np.zeros((n, 1)))
        return np.hstack(blocks)

    def embed_data(self, points: np.ndarray) -> np.ndarray:
        """Apply ``phi1`` to the rows of ``points`` (shape ``(n, d)``)."""
        return self._embed(points, query_side=False)

    def embed_query(self, points: np.ndarray) -> np.ndarray:
        """Apply ``phi2`` to the rows of ``points`` (shape ``(n, d)``)."""
        return self._embed(points, query_side=True)


class _CountSketch:
    """A single CountSketch ``R^d -> R^m`` (hash bucket + sign per coordinate)."""

    def __init__(self, d: int, m: int, rng: np.random.Generator) -> None:
        self.buckets = rng.integers(0, m, size=d)
        self.signs = rng.choice(np.array([-1.0, 1.0]), size=d)
        self.m = m

    def apply(self, points: np.ndarray) -> np.ndarray:
        """Signed feature hashing: scatter-add each coordinate into its bucket."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        n = points.shape[0]
        out = np.zeros((n, self.m))
        signed = points * self.signs
        np.add.at(out.T, self.buckets, signed.T)
        return out


class TensorSketchEmbedding:
    """Approximate Valiant embedding via TensorSketch (Pham–Pagh [42]).

    Replaces each explicit tensor power ``x^{(i)}`` by an ``m``-dimensional
    sketch computed as the FFT-domain product of ``i`` independent
    CountSketches; inner products are preserved in expectation:
    ``E[<sk_i(x), sk_i(y)>] = <x, y>**i`` with variance ``O(1/m)`` factors.
    Data and query sides share the CountSketch randomness per degree, so the
    polynomial identity holds approximately for the concatenated maps.

    Parameters
    ----------
    coefficients:
        Polynomial coefficients ``[a_0, ..., a_k]`` with ``sum |a_i| <= 1``.
    d:
        Input dimension.
    sketch_dim:
        Sketch size ``m`` per degree (larger = smaller error).
    rng:
        Seed or generator for the sketch randomness.
    """

    def __init__(
        self,
        coefficients: np.ndarray,
        d: int,
        sketch_dim: int = 256,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        self.coefficients = _check_coefficients(coefficients)
        if d < 1:
            raise ValueError(f"d must be >= 1, got {d}")
        if sketch_dim < 1:
            raise ValueError(f"sketch_dim must be >= 1, got {sketch_dim}")
        self.d = int(d)
        self.sketch_dim = int(sketch_dim)
        self.degree = self.coefficients.size - 1
        rng = ensure_rng(rng)
        # One list of CountSketches per degree i >= 1 (degree i uses i sketches).
        self._sketches = {
            i: [_CountSketch(d, sketch_dim, rng) for _ in range(i)]
            for i in range(1, self.degree + 1)
        }
        self._slack = max(0.0, 1.0 - float(np.sum(np.abs(self.coefficients))))

    @property
    def output_dim(self) -> int:
        """Dimension of the sketched embedding."""
        return 2 + 1 + self.degree * self.sketch_dim

    def _degree_sketch(self, points: np.ndarray, degree: int) -> np.ndarray:
        """TensorSketch of ``x^{(degree)}`` for each row, shape ``(n, m)``."""
        if degree == 1:
            return self._sketches[1][0].apply(points)
        prod = None
        for cs in self._sketches[degree]:
            f = np.fft.rfft(cs.apply(points), axis=1)
            prod = f if prod is None else prod * f
        return np.fft.irfft(prod, n=self.sketch_dim, axis=1)

    def _embed(self, points: np.ndarray, query_side: bool) -> np.ndarray:
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[1] != self.d:
            raise ValueError(f"expected dimension {self.d}, got {points.shape[1]}")
        n = points.shape[0]
        blocks = []
        a0 = self.coefficients[0]
        root0 = np.sqrt(abs(a0))
        blocks.append(np.full((n, 1), np.sign(a0) * root0 if query_side else root0))
        for i in range(1, self.degree + 1):
            a = self.coefficients[i]
            root = np.sqrt(abs(a))
            weight = np.sign(a) * root if query_side else root
            blocks.append(weight * self._degree_sketch(points, i))
        pad = np.sqrt(self._slack)
        if query_side:
            blocks.append(np.zeros((n, 1)))
            blocks.append(np.full((n, 1), pad))
        else:
            blocks.append(np.full((n, 1), pad))
            blocks.append(np.zeros((n, 1)))
        return np.hstack(blocks)

    def embed_data(self, points: np.ndarray) -> np.ndarray:
        """Approximate ``phi1`` applied to the rows of ``points``."""
        return self._embed(points, query_side=False)

    def embed_query(self, points: np.ndarray) -> np.ndarray:
        """Approximate ``phi2`` applied to the rows of ``points``."""
        return self._embed(points, query_side=True)
