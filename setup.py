"""Setup shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so that
legacy editable installs (``python setup.py develop``) work in offline
environments that lack the ``wheel`` package required by PEP 660 editable
wheels.
"""

from setuptools import setup

setup()
