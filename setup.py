"""Package metadata for the ``src/``-layout distribution.

Kept as ``setup.py`` (rather than ``pyproject.toml``) so legacy editable
installs (``pip install -e .`` / ``python setup.py develop``) work in
offline environments that lack the ``wheel`` package required by PEP 660
editable wheels.  ``package_dir`` points setuptools at ``src/`` so an
editable install makes ``import repro`` work without ``PYTHONPATH``
gymnastics; CI asserts exactly that.
"""

from setuptools import find_packages, setup

setup(
    name="dsh-repro",
    version="0.1.0",
    description=(
        "Reproduction of Distance-Sensitive Hashing "
        "(Aumüller, Christiani, Pagh, Silvestri; PODS 2018)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.24",
        "scipy>=1.10",
    ],
)
